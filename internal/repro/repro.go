// Package repro regenerates every evaluation artifact of the paper: the
// CUBE display of the unoptimized PESCAN run (Fig. 1), the difference
// experiment after barrier removal (Fig. 2), the solver speedup quoted in
// §5.1, the merged EXPERT+CONE experiment (Fig. 3), and the trace-size
// comparison motivating the merge operator (§5.2). The cube-repro command
// and the benchmark harness are thin wrappers around these functions.
package repro

import (
	"fmt"

	"cube/internal/apps"
	"cube/internal/cone"
	"cube/internal/core"
	"cube/internal/counters"
	"cube/internal/cubexml"
	"cube/internal/display"
	"cube/internal/expert"
	"cube/internal/mpisim"
	"cube/internal/stats"
)

// PaperValues records the numbers the paper reports, for side-by-side
// comparison in EXPERIMENTS.md.
var PaperValues = struct {
	WaitAtBarrierPct float64 // Fig. 1: waiting before barriers, % of execution time
	SolverSpeedupPct float64 // §5.1: speedup of the central solver
	SeriesRuns       int     // §5.1: runs per configuration series
}{
	WaitAtBarrierPct: 13.2,
	SolverSpeedupPct: 16,
	SeriesRuns:       10,
}

// pescanCfg is the shared workload configuration of §5.1: 16 processes on
// four 4-way SMP nodes, medium-sized particle model.
func pescanCfg(barriers bool, seed int64) apps.PescanConfig {
	return apps.PescanConfig{Barriers: barriers, Seed: seed, NoiseAmp: 0.02}.WithDefaults()
}

// analyzePescan simulates one PESCAN run and analyzes its trace.
func analyzePescan(barriers bool, seed int64) (*core.Experiment, *mpisim.Run, error) {
	cfg := pescanCfg(barriers, seed)
	run, err := apps.RunPescan(cfg)
	if err != nil {
		return nil, nil, err
	}
	e, err := expert.Analyze(run.Trace, &expert.Options{Machine: "torc", Nodes: cfg.Nodes})
	if err != nil {
		return nil, nil, err
	}
	return e, run, nil
}

// --- Figure 1 ---------------------------------------------------------------

// Fig1Result reproduces Figure 1: the CUBE display of the unoptimized
// PESCAN data set, with the Wait-at-Barrier metric selected and values
// shown as percentages of the overall execution time.
type Fig1Result struct {
	// Exp is the analyzed experiment.
	Exp *core.Experiment
	// WaitAtBarrierPct is the selected metric's share of the total
	// execution time (paper: 13.2 %).
	WaitAtBarrierPct float64
	// Rendering is the text rendering of the three-tree display.
	Rendering string
}

// Fig1 regenerates Figure 1.
func Fig1(seed int64) (*Fig1Result, error) {
	e, _, err := analyzePescan(true, seed)
	if err != nil {
		return nil, err
	}
	wab := e.FindMetricByName(expert.MetricWaitAtBarrier)
	if wab == nil {
		return nil, fmt.Errorf("repro: no Wait at Barrier metric")
	}
	timeRoot := e.FindMetricByName(expert.MetricTime)
	total := e.MetricInclusive(timeRoot)
	sel := display.Selection{Metric: wab, MetricCollapsed: true, CNode: e.CallRoots()[0], CNodeCollapsed: true}
	rendering, err := display.RenderString(e, sel, &display.Config{Mode: display.Percent, HideZero: true})
	if err != nil {
		return nil, err
	}
	return &Fig1Result{
		Exp:              e,
		WaitAtBarrierPct: 100 * e.MetricInclusive(wab) / total,
		Rendering:        rendering,
	}, nil
}

// --- Figure 2 ---------------------------------------------------------------

// Fig2Result reproduces Figure 2: the difference experiment obtained by
// subtracting the optimized (no-barrier) version from the original.
// Positive severities are performance gains (raised relief), negative ones
// losses (sunken relief); values are normalized with respect to the old
// version's execution time.
type Fig2Result struct {
	Before, After, Diff *core.Experiment
	// ImprovementPct maps metric names to their improvement in percent
	// of the previous execution time (negative = got worse).
	ImprovementPct map[string]float64
	// GrossBalancePct is the overall improvement (paper: clearly
	// positive).
	GrossBalancePct float64
	// Rendering shows the difference experiment in external-percent
	// mode, exactly how a user would browse it.
	Rendering string
}

// Fig2Metrics lists the metrics whose migration Figure 2 discusses.
var Fig2Metrics = []string{
	expert.MetricWaitAtBarrier,
	expert.MetricSync,
	expert.MetricBarrierCompl,
	expert.MetricP2P,
	expert.MetricLateSender,
	expert.MetricWaitAtNxN,
}

// Fig2 regenerates Figure 2.
func Fig2(seed int64) (*Fig2Result, error) {
	before, _, err := analyzePescan(true, seed)
	if err != nil {
		return nil, err
	}
	after, _, err := analyzePescan(false, seed+500)
	if err != nil {
		return nil, err
	}
	diff, err := core.Difference(before, after, nil)
	if err != nil {
		return nil, err
	}
	oldTotal := before.MetricInclusive(before.FindMetricByName(expert.MetricTime))
	impr := map[string]float64{}
	for _, name := range Fig2Metrics {
		m := diff.FindMetricByName(name)
		if m == nil {
			return nil, fmt.Errorf("repro: metric %q missing from difference", name)
		}
		// Exclusive values, following the display's single-representation
		// principle: each fraction of the change appears exactly once.
		impr[name] = 100 * diff.MetricTotal(m) / oldTotal
	}
	gross := 100 * diff.MetricInclusive(diff.FindMetricByName(expert.MetricTime)) / oldTotal

	wab := diff.FindMetricByName(expert.MetricWaitAtBarrier)
	sel := display.Selection{Metric: wab, MetricCollapsed: true, CNode: diff.CallRoots()[0], CNodeCollapsed: true}
	rendering, err := display.RenderString(diff, sel, &display.Config{
		Mode: display.External, Base: oldTotal, HideZero: true,
	})
	if err != nil {
		return nil, err
	}
	return &Fig2Result{
		Before: before, After: after, Diff: diff,
		ImprovementPct:  impr,
		GrossBalancePct: gross,
		Rendering:       rendering,
	}, nil
}

// --- §5.1 solver speedup ------------------------------------------------------

// SpeedupResult reproduces the §5.1 measurement: two series of runs for
// either configuration, solver timed without trace instrumentation, the
// minimum of each series as the representative.
type SpeedupResult struct {
	Runs                int
	BeforeSeries        []float64
	AfterSeries         []float64
	BeforeMin, AfterMin float64
	SpeedupPct          float64
}

// Speedup regenerates the solver-speedup measurement with the given series
// length (the paper uses ten runs per configuration).
func Speedup(runs int, seed int64) (*SpeedupResult, error) {
	// The runs of a series are independent deterministic simulations, so
	// they execute concurrently; index-slotted results keep the series
	// identical to a sequential execution.
	measure := func(barriers bool) ([]float64, error) {
		return stats.SeriesParallel(runs, func(i int) (float64, error) {
			run, err := apps.RunPescan(pescanCfg(barriers, seed+int64(i)*17))
			if err != nil {
				return 0, err
			}
			return run.Elapsed, nil
		})
	}
	before, err := measure(true)
	if err != nil {
		return nil, err
	}
	after, err := measure(false)
	if err != nil {
		return nil, err
	}
	bMin, _ := stats.Representative(before)
	aMin, _ := stats.Representative(after)
	sp, err := stats.Speedup(bMin, aMin)
	if err != nil {
		return nil, err
	}
	return &SpeedupResult{
		Runs:         runs,
		BeforeSeries: before, AfterSeries: after,
		BeforeMin: bMin, AfterMin: aMin,
		SpeedupPct: 100 * sp,
	}, nil
}

// --- Figure 3 ---------------------------------------------------------------

// Fig3Events are the hardware events of §5.2: floating-point instructions
// and level-1 data-cache misses, which the platform cannot count in the
// same run.
var Fig3Events = []counters.Event{counters.FPIns, counters.L1DataMiss}

// Fig3Result reproduces Figure 3: a derived experiment merging one EXPERT
// output with CONE outputs referring to different event sets.
type Fig3Result struct {
	Expert       *core.Experiment
	ConeSets     []counters.EventSet
	ConeProfiles []*core.Experiment
	Merged       *core.Experiment
	// MetricRoots lists the metric roots of the merged experiment (trace
	// metrics plus the counter metrics from the separate runs).
	MetricRoots []string
	// L1MissAtRecvPct is the share of level-1 data-cache misses at
	// MPI_Recv call paths (the paper observes a high concentration).
	L1MissAtRecvPct float64
	// LateSenderPct is the share of late-sender waiting in total time at
	// the same call paths.
	LateSenderPct float64
	Rendering     string
}

// Fig3 regenerates Figure 3. runsPerMeasurement > 1 additionally applies
// the mean operator to that many perturbed repetitions of every
// measurement before merging, as §5.2 suggests for smoothing random
// errors.
func Fig3(seed int64, runsPerMeasurement int) (*Fig3Result, error) {
	if runsPerMeasurement < 1 {
		runsPerMeasurement = 1
	}
	scfg := apps.Sweep3DConfig{Seed: seed, NoiseAmp: 0.02}.WithDefaults()

	topo := apps.Sweep3DTopology(scfg)

	// EXPERT measurement(s): trace-based analysis.
	var expertRuns []*core.Experiment
	for i := 0; i < runsPerMeasurement; i++ {
		cfg := scfg
		cfg.Seed = seed + int64(i)*13
		run, err := apps.RunSweep3D(cfg)
		if err != nil {
			return nil, err
		}
		e, err := expert.Analyze(run.Trace, &expert.Options{Machine: "power4", Nodes: scfg.Nodes, Topology: topo})
		if err != nil {
			return nil, err
		}
		expertRuns = append(expertRuns, e)
	}
	expertExp := expertRuns[0]
	if len(expertRuns) > 1 {
		var err error
		expertExp, err = core.Mean(nil, expertRuns...)
		if err != nil {
			return nil, err
		}
	}

	// CONE measurements: the event sets are split because of the
	// platform's counter conflicts; one (series of) run(s) per set.
	sets, err := counters.Partition(Fig3Events)
	if err != nil {
		return nil, err
	}
	var profiles []*core.Experiment
	for si, set := range sets {
		var series []*core.Experiment
		for i := 0; i < runsPerMeasurement; i++ {
			cfg := apps.Sweep3DSimConfig(scfg)
			cfg.TraceCounters = set
			cfg.Seed = seed + 1000 + int64(si)*101 + int64(i)*13
			run, err := mpisim.Simulate(cfg, apps.Sweep3D(scfg))
			if err != nil {
				return nil, err
			}
			p, err := cone.Profile(run.Trace, &cone.Options{Machine: "power4", Nodes: scfg.Nodes,
				Topology: topo,
				Title:    fmt.Sprintf("sweep3d (cone %v run %d)", set, i)})
			if err != nil {
				return nil, err
			}
			series = append(series, p)
		}
		p := series[0]
		if len(series) > 1 {
			p, err = core.Mean(nil, series...)
			if err != nil {
				return nil, err
			}
		}
		profiles = append(profiles, p)
	}

	operands := append([]*core.Experiment{expertExp}, profiles...)
	merged, err := core.MergeAll(nil, operands...)
	if err != nil {
		return nil, err
	}

	var roots []string
	for _, r := range merged.MetricRoots() {
		roots = append(roots, r.Name)
	}

	l1m := merged.FindMetricByName(string(counters.L1DataMiss))
	if l1m == nil {
		return nil, fmt.Errorf("repro: merged experiment lacks %s", counters.L1DataMiss)
	}
	var recvMiss, allMiss float64
	for _, cn := range merged.CallNodes() {
		v := merged.MetricValue(l1m, cn)
		allMiss += v
		if cn.Callee().Name == mpisim.RegionRecv {
			recvMiss += v
		}
	}
	ls := merged.FindMetricByName(expert.MetricLateSender)
	timeTotal := merged.MetricInclusive(merged.FindMetricByName(expert.MetricTime))

	sel := display.Selection{Metric: l1m, MetricCollapsed: true, CNode: merged.CallRoots()[0], CNodeCollapsed: true}
	rendering, err := display.RenderString(merged, sel, &display.Config{Mode: display.Percent, HideZero: true})
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{
		Expert: expertExp, ConeSets: sets, ConeProfiles: profiles, Merged: merged,
		MetricRoots:     roots,
		L1MissAtRecvPct: 100 * recvMiss / allMiss,
		LateSenderPct:   100 * merged.MetricInclusive(ls) / timeTotal,
		Rendering:       rendering,
	}
	return res, nil
}

// --- §5.2 trace-size comparison ------------------------------------------------

// TraceSizeResult quantifies the trace-file enlargement caused by
// recording hardware counters in every event record, and the size of the
// CONE call-graph profile that makes the separate-measurement-plus-merge
// approach attractive.
type TraceSizeResult struct {
	Events            int
	PlainTraceBytes   int
	CounterTraceBytes int
	ProfileBytes      int
	// EnlargementPct is the growth of the trace caused by per-record
	// counters.
	EnlargementPct float64
	// TraceOverProfile is how many times larger the counter trace is
	// than the equivalent profile.
	TraceOverProfile float64
}

// TraceSizeEvents is the event set recorded per trace record in the
// ablation (a full set of four compatible counters).
var TraceSizeEvents = counters.EventSet{
	counters.TotalCycles, counters.TotalIns, counters.L1DataAccess, counters.L1DataMiss,
}

// TraceSize regenerates the §5.2 size comparison.
func TraceSize(seed int64) (*TraceSizeResult, error) {
	scfg := apps.Sweep3DConfig{Seed: seed}.WithDefaults()

	plain, err := apps.RunSweep3D(scfg)
	if err != nil {
		return nil, err
	}
	cfg := apps.Sweep3DSimConfig(scfg)
	cfg.TraceCounters = TraceSizeEvents
	counted, err := mpisim.Simulate(cfg, apps.Sweep3D(scfg))
	if err != nil {
		return nil, err
	}
	prof, err := cone.Profile(counted.Trace, &cone.Options{Machine: "power4", Nodes: scfg.Nodes})
	if err != nil {
		return nil, err
	}
	profBytes, err := experimentSize(prof)
	if err != nil {
		return nil, err
	}
	res := &TraceSizeResult{
		Events:            len(plain.Trace.Events),
		PlainTraceBytes:   plain.Trace.EncodedSize(),
		CounterTraceBytes: counted.Trace.EncodedSize(),
		ProfileBytes:      profBytes,
	}
	res.EnlargementPct = 100 * float64(res.CounterTraceBytes-res.PlainTraceBytes) / float64(res.PlainTraceBytes)
	res.TraceOverProfile = float64(res.CounterTraceBytes) / float64(res.ProfileBytes)
	return res, nil
}

func experimentSize(e *core.Experiment) (int, error) {
	var cw countingWriter
	if err := cubexml.Write(&cw, e); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type countingWriter struct{ n int }

func (cw *countingWriter) Write(p []byte) (int, error) {
	cw.n += len(p)
	return len(p), nil
}
