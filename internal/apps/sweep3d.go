package apps

import (
	"fmt"

	"cube/internal/core"
	"cube/internal/counters"
	"cube/internal/mpisim"
)

// Sweep3DConfig parameterises the SWEEP3D-like wavefront workload: a
// discrete-ordinates transport sweep over a PX×PY process grid. For each of
// eight octants the sweep pipelines angle blocks diagonally across the
// grid: every rank receives its upstream boundary fluxes, computes its
// subdomain, and sends the downstream boundaries. During pipeline fill the
// downstream ranks block in MPI_Recv before the corresponding sends have
// started — the classical Late Sender pattern — and unpacking the received
// boundary data is the cache-unfriendly part of the code, so level-1 data
// cache misses concentrate at the MPI_Recv call paths (§5.2).
type Sweep3DConfig struct {
	// PX and PY are the process-grid dimensions (NP = PX*PY); Nodes the
	// number of SMP nodes.
	PX, PY, Nodes int
	// Octants is the number of sweep directions (the benchmark uses 8).
	Octants int
	// Blocks is the number of pipelined angle blocks per octant.
	Blocks int
	// CellSec is the compute time per rank per block.
	CellSec float64
	// BoundaryBytes is the boundary exchange volume per direction.
	BoundaryBytes int64
	// Seed and NoiseAmp configure the simulator's noise.
	Seed     int64
	NoiseAmp float64
}

// WithDefaults returns cfg with zero fields replaced by defaults (a 4×4
// grid on four nodes, 8 octants, 6 angle blocks).
func (c Sweep3DConfig) WithDefaults() Sweep3DConfig {
	if c.PX == 0 {
		c.PX = 4
	}
	if c.PY == 0 {
		c.PY = 4
	}
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.Octants == 0 {
		c.Octants = 8
	}
	if c.Blocks == 0 {
		c.Blocks = 6
	}
	if c.CellSec == 0 {
		c.CellSec = 1.2e-3
	}
	if c.BoundaryBytes == 0 {
		c.BoundaryBytes = 64 << 10
	}
	return c
}

// sweepWork is the compute work of one angle block: flop-heavy with mostly
// cache-resident data, so cache misses stay low outside MPI_Recv.
func sweepWork(sec float64) counters.Work {
	return counters.Work{Flops: sec * 260e6, LocalBytes: sec * 30e6, MemBytes: sec * 0.5e6}
}

// Sweep3D builds the per-rank program.
func Sweep3D(c Sweep3DConfig) mpisim.Program {
	c = c.WithDefaults()
	return func(b *mpisim.B) {
		np := b.NP()
		if np != c.PX*c.PY {
			// Builder-level validation: misconfigured grids fail fast.
			b.At(1).Enter("main")
			b.Exit()
			if np != c.PX*c.PY {
				panic(fmt.Sprintf("apps: sweep3d grid %dx%d does not match np=%d", c.PX, c.PY, np))
			}
			return
		}
		r := b.Rank()
		ix, iy := r%c.PX, r/c.PX

		b.At(10).Enter("main")
		b.At(12).Region("source", func() {
			b.Compute(c.CellSec, sweepWork(c.CellSec))
		})
		b.At(15).Enter("sweep")
		for oct := 0; oct < c.Octants; oct++ {
			// Sweep direction alternates per octant.
			dx := 1
			if oct&1 != 0 {
				dx = -1
			}
			dy := 1
			if oct&2 != 0 {
				dy = -1
			}
			upX, downX := ix-dx, ix+dx
			upY, downY := iy-dy, iy+dy
			tag := 200 + oct
			b.At(20+oct).Region("octant", func() {
				for blk := 0; blk < c.Blocks; blk++ {
					if upX >= 0 && upX < c.PX {
						b.At(30).Recv(iy*c.PX+upX, tag)
					}
					if upY >= 0 && upY < c.PY {
						b.At(31).Recv(upY*c.PX+ix, tag+100)
					}
					b.At(33).Region("compute_block", func() {
						b.Compute(c.CellSec, sweepWork(c.CellSec))
					})
					if downX >= 0 && downX < c.PX {
						b.At(36).Send(iy*c.PX+downX, tag, c.BoundaryBytes)
					}
					if downY >= 0 && downY < c.PY {
						b.At(37).Send(downY*c.PX+ix, tag+100, c.BoundaryBytes)
					}
				}
			})
		}
		b.Exit() // sweep
		b.At(50).Region("flux_err", func() {
			b.AllReduce(8)
		})
		b.Exit() // main
	}
}

// Sweep3DSimConfig returns the simulator configuration for the workload.
func Sweep3DSimConfig(c Sweep3DConfig) mpisim.Config {
	c = c.WithDefaults()
	return mpisim.Config{
		Program:  "sweep3d",
		NumRanks: c.PX * c.PY,
		NumNodes: c.Nodes,
		Seed:     c.Seed,
		NoiseAmp: c.NoiseAmp,
	}
}

// RunSweep3D simulates one execution of the workload.
func RunSweep3D(c Sweep3DConfig) (*mpisim.Run, error) {
	c = c.WithDefaults()
	return mpisim.Simulate(Sweep3DSimConfig(c), Sweep3D(c))
}

// Sweep3DTopology returns the PY x PX Cartesian process topology of the
// workload (rank = iy*PX + ix), for attachment to analyzed experiments.
func Sweep3DTopology(c Sweep3DConfig) *core.Topology {
	c = c.WithDefaults()
	t, err := core.NewCartesian("sweep grid", c.PY, c.PX)
	if err != nil {
		panic(err) // defaults are always valid
	}
	return t
}
