package apps

import (
	"testing"

	"cube/internal/expert"
	"cube/internal/mpisim"
	"cube/internal/trace"
)

func TestPescanDefaults(t *testing.T) {
	c := PescanConfig{}.WithDefaults()
	if c.NP != 16 || c.Nodes != 4 || c.Iterations == 0 || c.ImbalanceSec == 0 {
		t.Errorf("defaults incomplete: %+v", c)
	}
	// Explicit values survive.
	c2 := PescanConfig{NP: 8, Iterations: 3}.WithDefaults()
	if c2.NP != 8 || c2.Iterations != 3 {
		t.Errorf("explicit values overridden: %+v", c2)
	}
}

func TestPescanImbalanceShape(t *testing.T) {
	c := PescanConfig{}.WithDefaults()
	if c.imbalance(0) != 0 {
		t.Errorf("rank 0 must have zero displacement")
	}
	if c.imbalance(c.NP-1) != c.ImbalanceSec {
		t.Errorf("last rank must have full displacement")
	}
	if got := (PescanConfig{NP: 1}).WithDefaults(); got.imbalance(0) != 0 {
		t.Errorf("single-rank imbalance must be zero")
	}
}

func TestPescanRunsAndValidates(t *testing.T) {
	for _, barriers := range []bool{true, false} {
		run, err := RunPescan(PescanConfig{Barriers: barriers, Seed: 1, Iterations: 5})
		if err != nil {
			t.Fatalf("barriers=%v: %v", barriers, err)
		}
		if err := run.Trace.Validate(); err != nil {
			t.Fatalf("barriers=%v trace invalid: %v", barriers, err)
		}
		// Barrier events present iff the variant has barriers.
		hasBarrier := false
		for _, ev := range run.Trace.Events {
			if ev.Coll == trace.CollBarrier {
				hasBarrier = true
			}
		}
		if hasBarrier != barriers {
			t.Errorf("barriers=%v but trace barrier presence = %v", barriers, hasBarrier)
		}
	}
}

func TestPescanBarrierVersionIsSlower(t *testing.T) {
	b, err := RunPescan(PescanConfig{Barriers: true, Seed: 2, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	n, err := RunPescan(PescanConfig{Barriers: false, Seed: 2, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if b.Elapsed <= n.Elapsed {
		t.Errorf("barrier version must be slower: %v vs %v", b.Elapsed, n.Elapsed)
	}
	speedup := (b.Elapsed - n.Elapsed) / b.Elapsed
	if speedup < 0.08 || speedup > 0.30 {
		t.Errorf("speedup %.1f%% outside the plausible band", 100*speedup)
	}
}

func TestPescanWaitMigration(t *testing.T) {
	analyze := func(barriers bool) map[string]float64 {
		run, err := RunPescan(PescanConfig{Barriers: barriers, Seed: 3, Iterations: 10})
		if err != nil {
			t.Fatal(err)
		}
		e, err := expert.Analyze(run.Trace, nil)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]float64{}
		for _, m := range []string{expert.MetricWaitAtBarrier, expert.MetricWaitAtNxN, expert.MetricLateSender} {
			out[m] = e.MetricTotal(e.FindMetricByName(m))
		}
		return out
	}
	with := analyze(true)
	without := analyze(false)
	if with[expert.MetricWaitAtBarrier] <= 0 {
		t.Errorf("barrier version has no barrier waiting")
	}
	if without[expert.MetricWaitAtBarrier] != 0 {
		t.Errorf("barrier-free version reports barrier waiting")
	}
	// Waiting migrates: NxN and late-sender waiting increase.
	if without[expert.MetricWaitAtNxN] <= with[expert.MetricWaitAtNxN] {
		t.Errorf("Wait-at-NxN did not increase: %v -> %v",
			with[expert.MetricWaitAtNxN], without[expert.MetricWaitAtNxN])
	}
	if without[expert.MetricLateSender] <= with[expert.MetricLateSender] {
		t.Errorf("Late Sender did not increase: %v -> %v",
			with[expert.MetricLateSender], without[expert.MetricLateSender])
	}
}

func TestSweep3DDefaultsAndGrid(t *testing.T) {
	c := Sweep3DConfig{}.WithDefaults()
	if c.PX*c.PY != 16 || c.Octants != 8 {
		t.Errorf("defaults: %+v", c)
	}
	run, err := RunSweep3D(Sweep3DConfig{Seed: 1, Octants: 2, Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Trace.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if run.Trace.NumRanks != 16 {
		t.Errorf("ranks = %d", run.Trace.NumRanks)
	}
}

func TestSweep3DDeterministicPerSeed(t *testing.T) {
	a, err := RunSweep3D(Sweep3DConfig{Seed: 9, NoiseAmp: 0.05, Octants: 2, Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSweep3D(Sweep3DConfig{Seed: 9, NoiseAmp: 0.05, Octants: 2, Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed {
		t.Errorf("same seed, different elapsed")
	}
	c, err := RunSweep3D(Sweep3DConfig{Seed: 10, NoiseAmp: 0.05, Octants: 2, Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Elapsed == a.Elapsed {
		t.Errorf("different seed, identical elapsed")
	}
}

func TestSweep3DTopology(t *testing.T) {
	c := Sweep3DConfig{}.WithDefaults()
	topo := Sweep3DTopology(c)
	if len(topo.Dims) != 2 || topo.Dims[0] != c.PY || topo.Dims[1] != c.PX {
		t.Fatalf("dims = %v, want [%d %d]", topo.Dims, c.PY, c.PX)
	}
	// rank = iy*PX + ix.
	if topo.RankAt(2, 3) != 2*c.PX+3 {
		t.Errorf("RankAt(2,3) = %d", topo.RankAt(2, 3))
	}
	if len(topo.Coords) != c.PX*c.PY {
		t.Errorf("coords = %d", len(topo.Coords))
	}
}

func TestHybridDefaultsAndRun(t *testing.T) {
	c := HybridConfig{}.WithDefaults()
	if c.NP != 4 || c.Threads != 4 || c.Iterations == 0 || c.ThreadImbalance == 0 {
		t.Errorf("defaults incomplete: %+v", c)
	}
	c2 := HybridConfig{NP: 2, Threads: 3, Iterations: 2}.WithDefaults()
	if c2.NP != 2 || c2.Threads != 3 || c2.Iterations != 2 {
		t.Errorf("explicit values overridden")
	}
	run, err := RunHybrid(HybridConfig{Seed: 1, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Trace.Validate(); err != nil {
		t.Fatalf("hybrid trace invalid: %v", err)
	}
	per := run.Trace.ThreadsPerRank()
	for rank, n := range per {
		if n != 4 {
			t.Errorf("rank %d threads = %d, want 4", rank, n)
		}
	}
}

func TestHybridSingleThreadDegenerate(t *testing.T) {
	run, err := RunHybrid(HybridConfig{Threads: 1, Iterations: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Trace.Validate(); err != nil {
		t.Fatalf("single-thread hybrid invalid: %v", err)
	}
}

func TestSweep3DGridMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("grid mismatch did not panic")
		}
	}()
	cfg := Sweep3DConfig{PX: 3, PY: 3}.WithDefaults()
	sim := Sweep3DSimConfig(cfg)
	sim.NumRanks = 7 // does not match 3x3
	_, _ = mpisim.Simulate(sim, Sweep3D(cfg))
}

func TestPescanSimConfigVariantNames(t *testing.T) {
	if got := PescanSimConfig(PescanConfig{Barriers: true}).Program; got != "pescan-barrier" {
		t.Errorf("program = %q", got)
	}
	if got := PescanSimConfig(PescanConfig{}).Program; got != "pescan-nobarrier" {
		t.Errorf("program = %q", got)
	}
	if PescanSimConfig(PescanConfig{}).BarrierCost == 0 {
		t.Errorf("barrier cost not forwarded")
	}
}

func TestMasterWorkerWrongOrder(t *testing.T) {
	run, err := RunMasterWorker(MasterWorkerConfig{Seed: 1, Batches: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Trace.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	e, err := expert.Analyze(run.Trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	wrong := e.MetricInclusive(e.FindMetricByName(expert.MetricWrongOrder))
	if wrong <= 0 {
		t.Errorf("master/worker collection produced no wrong-order waiting")
	}
	// All wrong-order waiting sits on the master's collect path.
	m := e.FindMetricByName(expert.MetricWrongOrder)
	for _, cn := range e.CallNodes() {
		if v := e.MetricValue(m, cn); v > 0 && cn.Parent() != nil && cn.Parent().Callee().Name != "collect" {
			t.Errorf("wrong-order waiting at unexpected path %s", cn.Path())
		}
	}
	// Star-shaped communication: only rank 0 exchanges with workers.
	cm := run.Trace.BuildCommMatrix()
	for src := 1; src < cm.NumRanks; src++ {
		for dst := 1; dst < cm.NumRanks; dst++ {
			if cm.Messages[src][dst] != 0 {
				t.Errorf("worker-to-worker traffic %d->%d", src, dst)
			}
		}
		if cm.Messages[src][0] == 0 || cm.Messages[0][src] == 0 {
			t.Errorf("missing master traffic for worker %d", src)
		}
	}
}

func TestMasterWorkerDefaults(t *testing.T) {
	c := MasterWorkerConfig{}.WithDefaults()
	if c.NP != 8 || c.Batches != 10 || c.Skew == 0 {
		t.Errorf("defaults incomplete: %+v", c)
	}
	if MasterWorkerSimConfig(MasterWorkerConfig{}).Program != "masterworker" {
		t.Errorf("program name wrong")
	}
}

func TestSweep3DPipelineFill(t *testing.T) {
	// The corner rank opposite the sweep origin must experience
	// late-sender waiting during pipeline fill.
	run, err := RunSweep3D(Sweep3DConfig{Seed: 4, Octants: 1, Blocks: 3})
	if err != nil {
		t.Fatal(err)
	}
	e, err := expert.Analyze(run.Trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	ls := e.FindMetricByName(expert.MetricLateSender)
	lsIncl := e.MetricInclusive(ls)
	if lsIncl <= 0 {
		t.Fatalf("no late-sender waiting in a wavefront sweep")
	}
	// Rank 15 (far corner for octant 0) waits more than rank 0 (origin).
	far := e.ThreadTotal(ls, e.FindThread(15, 0))
	near := e.ThreadTotal(ls, e.FindThread(0, 0))
	wrong := e.FindMetricByName(expert.MetricWrongOrder)
	far += e.ThreadTotal(wrong, e.FindThread(15, 0))
	near += e.ThreadTotal(wrong, e.FindThread(0, 0))
	if far <= near {
		t.Errorf("pipeline fill: far corner %v should wait more than origin %v", far, near)
	}
}
