// Package apps provides synthetic message-passing applications whose
// communication structure reproduces the workloads of the paper's two case
// studies: a PESCAN-like iterative eigensolver (§5.1, before/after barrier
// removal) and a SWEEP3D-like pipelined wavefront sweep (§5.2, late-sender
// waiting and cache misses concentrated at MPI_Recv). The applications run
// on the mpisim discrete-event simulator.
package apps

import (
	"fmt"

	"cube/internal/counters"
	"cube/internal/mpisim"
)

// PescanConfig parameterises the PESCAN-like eigensolver.
//
// The solver iterates FFT-based matrix-vector products: two compute phases
// with *antipodal* load imbalance (rank r is slower by d_r in the first
// phase and faster by the same d_r in the second), a point-to-point halo
// exchange between them, and a synchronizing all-to-all transpose plus an
// all-reduce dot product at the end of each iteration. The original code
// version surrounds the halo exchange with two barriers (introduced to
// avoid buffer overflow on large IBM runs); on a small Linux cluster they
// are unnecessary. With barriers, each iteration materialises the full
// imbalance spread twice as Wait-at-Barrier time; without them, the
// antipodal displacements cancel before the next synchronizing event, and
// only small residues migrate into P2P waiting and Wait-at-NxN.
type PescanConfig struct {
	// NP is the number of processes; Nodes the number of SMP nodes.
	NP, Nodes int
	// Iterations is the number of solver iterations.
	Iterations int
	// Barriers selects the original (true) or optimized (false) version.
	Barriers bool
	// FFTSec is the nominal duration of each FFT compute phase.
	FFTSec float64
	// ApplySec is the duration of the potential application phase.
	ApplySec float64
	// ImbalanceSec is the spread D of the antipodal imbalance: rank r is
	// displaced by +D*r/(NP-1) in the first phase and -D*r/(NP-1) in the
	// second.
	ImbalanceSec float64
	// HaloBytes is the point-to-point halo exchange volume per neighbor.
	HaloBytes int64
	// TransposeBytes is the per-pair all-to-all volume of the FFT
	// transpose.
	TransposeBytes int64
	// BarrierCostSec is the cost of the barrier algorithm itself.
	BarrierCostSec float64
	// Seed and NoiseAmp configure the simulator's noise.
	Seed     int64
	NoiseAmp float64
}

// WithDefaults returns cfg with zero fields replaced by the calibrated
// defaults (16 processes on four 4-way SMP nodes, medium-sized particle
// model) that reproduce the paper's numbers: Wait-at-Barrier ~13% of the
// execution time in the original version and a solver speedup of ~16%
// after barrier removal.
func (c PescanConfig) WithDefaults() PescanConfig {
	if c.NP == 0 {
		c.NP = 16
	}
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.Iterations == 0 {
		c.Iterations = 40
	}
	if c.FFTSec == 0 {
		c.FFTSec = 2.0e-3
	}
	if c.ApplySec == 0 {
		c.ApplySec = 0.8e-3
	}
	if c.ImbalanceSec == 0 {
		c.ImbalanceSec = 1.1e-3
	}
	if c.HaloBytes == 0 {
		c.HaloBytes = 8 << 10
	}
	if c.TransposeBytes == 0 {
		c.TransposeBytes = 12 << 10
	}
	if c.BarrierCostSec == 0 {
		c.BarrierCostSec = 200e-6
	}
	return c
}

// imbalance returns rank r's displacement d_r.
func (c PescanConfig) imbalance(r int) float64 {
	if c.NP <= 1 {
		return 0
	}
	return c.ImbalanceSec * float64(r) / float64(c.NP-1)
}

// fftWork converts seconds of FFT computation into abstract work.
func fftWork(sec float64) counters.Work {
	return counters.Work{Flops: sec * 220e6, LocalBytes: sec * 40e6, MemBytes: sec * 2e6}
}

// Pescan builds the per-rank program of the solver.
func Pescan(c PescanConfig) mpisim.Program {
	c = c.WithDefaults()
	return func(b *mpisim.B) {
		r := b.Rank()
		np := b.NP()
		// Open-chain (non-periodic) domain decomposition: boundary ranks
		// have a single neighbor. A periodic ring would wrap the largest
		// displacement back to rank 0 and re-materialise the imbalance at
		// the halo exchange even without barriers.
		left, right := r-1, r+1
		d := c.imbalance(r)

		b.At(10).Enter("main")
		b.At(12).Enter("solver")
		b.Compute(c.ApplySec, fftWork(c.ApplySec)) // setup
		for it := 0; it < c.Iterations; it++ {
			b.At(20).Enter("iterate")

			b.At(22).Region("fft_forward", func() {
				sec := c.FFTSec + d
				b.Compute(sec, fftWork(sec))
			})
			if c.Barriers {
				b.At(24).Barrier()
			}
			b.At(26).Region("exchange", func() {
				// Halo exchange with the chain neighbors, deadlock-free
				// because simulated sends complete eagerly.
				if right < np {
					b.Send(right, 100, c.HaloBytes)
				}
				if left >= 0 {
					b.Send(left, 101, c.HaloBytes)
					b.Recv(left, 100)
				}
				if right < np {
					b.Recv(right, 101)
				}
			})
			b.At(30).Region("apply_potential", func() {
				b.Compute(c.ApplySec, fftWork(c.ApplySec))
			})
			b.At(34).Region("fft_backward", func() {
				sec := c.FFTSec - d
				b.Compute(sec, fftWork(sec))
			})
			if c.Barriers {
				b.At(36).Barrier()
			}
			b.At(38).Region("transpose", func() {
				b.AllToAll(c.TransposeBytes)
			})
			b.At(40).Region("dotprod", func() {
				b.Compute(0.05e-3, fftWork(0.05e-3))
				b.AllReduce(8)
			})
			b.Exit() // iterate
		}
		b.Exit() // solver
		b.Exit() // main
	}
}

// PescanSimConfig returns the simulator configuration for the workload.
func PescanSimConfig(c PescanConfig) mpisim.Config {
	c = c.WithDefaults()
	variant := "nobarrier"
	if c.Barriers {
		variant = "barrier"
	}
	return mpisim.Config{
		Program:     fmt.Sprintf("pescan-%s", variant),
		NumRanks:    c.NP,
		NumNodes:    c.Nodes,
		BarrierCost: c.BarrierCostSec,
		Seed:        c.Seed,
		NoiseAmp:    c.NoiseAmp,
	}
}

// RunPescan simulates one execution of the workload.
func RunPescan(c PescanConfig) (*mpisim.Run, error) {
	c = c.WithDefaults()
	return mpisim.Simulate(PescanSimConfig(c), Pescan(c))
}
