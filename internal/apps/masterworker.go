package apps

import (
	"cube/internal/counters"
	"cube/internal/mpisim"
)

// MasterWorkerConfig parameterises a master/worker load balancer: rank 0
// hands out task batches and collects results; workers compute. Because
// result messages from differently-loaded workers race each other while
// the master collects them in a fixed order, this workload is a natural
// generator of the Messages-in-Wrong-Order pattern (late-sender waiting
// caused by consuming messages in the "wrong" order), and its star-shaped
// communication matrix contrasts with the stencil workloads.
type MasterWorkerConfig struct {
	// NP is the number of processes (1 master + NP-1 workers); Nodes the
	// number of SMP nodes.
	NP, Nodes int
	// Batches is the number of task batches each worker processes.
	Batches int
	// TaskSec is the nominal compute time per batch; worker w is slowed
	// by a factor (1 + Skew*w/(NP-2)).
	TaskSec float64
	Skew    float64
	// TaskBytes and ResultBytes are the message sizes.
	TaskBytes, ResultBytes int64
	// Seed and NoiseAmp configure the simulator's noise.
	Seed     int64
	NoiseAmp float64
}

// WithDefaults returns cfg with zero fields replaced by defaults.
func (c MasterWorkerConfig) WithDefaults() MasterWorkerConfig {
	if c.NP == 0 {
		c.NP = 8
	}
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.Batches == 0 {
		c.Batches = 10
	}
	if c.TaskSec == 0 {
		c.TaskSec = 1.5e-3
	}
	if c.Skew == 0 {
		c.Skew = 0.6
	}
	if c.TaskBytes == 0 {
		c.TaskBytes = 4 << 10
	}
	if c.ResultBytes == 0 {
		c.ResultBytes = 16 << 10
	}
	return c
}

// MasterWorker builds the per-rank program. The master distributes one
// batch to every worker, then collects the results in worker-rank order —
// while the fastest workers' results arrived long ago (wrong-order
// consumption whenever a slow low-rank worker holds up queued results of
// fast high-rank ones... here skew grows with rank, so collection order
// matches completion order of the *first* batch but later batches drift).
func MasterWorker(c MasterWorkerConfig) mpisim.Program {
	c = c.WithDefaults()
	return func(b *mpisim.B) {
		r := b.Rank()
		np := b.NP()
		const (
			tagTask   = 700
			tagResult = 701
		)
		b.At(10).Enter("main")
		if r == 0 {
			for batch := 0; batch < c.Batches; batch++ {
				b.At(20).Region("distribute", func() {
					for w := 1; w < np; w++ {
						b.Send(w, tagTask, c.TaskBytes)
					}
				})
				b.At(26).Region("collect", func() {
					// Fixed collection order: rank np-1 (the slowest
					// worker) first, so the faster workers' results wait
					// in the queue — wrong-order late-sender waiting.
					for w := np - 1; w >= 1; w-- {
						b.Recv(w, tagResult)
					}
				})
				b.At(30).Region("reduce_results", func() {
					b.Compute(0.1e-3, counters.Work{Flops: 5e4, MemBytes: float64(c.ResultBytes)})
				})
			}
		} else {
			slow := 1.0
			if np > 2 {
				slow += c.Skew * float64(r-1) / float64(np-2)
			}
			for batch := 0; batch < c.Batches; batch++ {
				b.At(40).Region("get_task", func() {
					b.Recv(0, tagTask)
				})
				b.At(44).Region("work", func() {
					sec := c.TaskSec * slow
					b.Compute(sec, counters.Work{Flops: sec * 250e6, LocalBytes: sec * 30e6})
				})
				b.At(48).Region("send_result", func() {
					b.Send(0, tagResult, c.ResultBytes)
				})
			}
		}
		b.Exit()
	}
}

// MasterWorkerSimConfig returns the simulator configuration.
func MasterWorkerSimConfig(c MasterWorkerConfig) mpisim.Config {
	c = c.WithDefaults()
	return mpisim.Config{
		Program:  "masterworker",
		NumRanks: c.NP,
		NumNodes: c.Nodes,
		Seed:     c.Seed,
		NoiseAmp: c.NoiseAmp,
	}
}

// RunMasterWorker simulates one execution of the workload.
func RunMasterWorker(c MasterWorkerConfig) (*mpisim.Run, error) {
	c = c.WithDefaults()
	return mpisim.Simulate(MasterWorkerSimConfig(c), MasterWorker(c))
}
