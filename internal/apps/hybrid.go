package apps

import (
	"cube/internal/counters"
	"cube/internal/mpisim"
)

// HybridConfig parameterises a hybrid MPI+OpenMP workload: each process
// alternates serial phases (master only — worker threads idle), OpenMP
// parallel loops with optional thread-level load imbalance (threads wait at
// the region's implicit join barrier), and funnelled MPI communication.
// It exercises the multi-threaded side of the CUBE data model: the system
// dimension carries a thread level and the EXPERT analyzer derives the
// OpenMP patterns (Idle Threads, Wait at OpenMP Barrier).
type HybridConfig struct {
	// NP is the number of processes; Nodes the number of SMP nodes;
	// Threads the OpenMP thread count per process.
	NP, Nodes, Threads int
	// Iterations is the number of outer iterations.
	Iterations int
	// SerialSec is the master-only serial time per iteration.
	SerialSec float64
	// ParallelSec is the per-thread nominal time of the parallel loop.
	ParallelSec float64
	// ThreadImbalance spreads the parallel loop across threads: thread t
	// computes ParallelSec * (1 + ThreadImbalance*t/(Threads-1)).
	ThreadImbalance float64
	// HaloBytes is the per-iteration neighbor exchange volume.
	HaloBytes int64
	// Seed and NoiseAmp configure the simulator's noise.
	Seed     int64
	NoiseAmp float64
}

// WithDefaults returns cfg with zero fields replaced by defaults: four
// 4-way SMP nodes running one 4-thread process each.
func (c HybridConfig) WithDefaults() HybridConfig {
	if c.NP == 0 {
		c.NP = 4
	}
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.Iterations == 0 {
		c.Iterations = 20
	}
	if c.SerialSec == 0 {
		c.SerialSec = 0.6e-3
	}
	if c.ParallelSec == 0 {
		c.ParallelSec = 2.0e-3
	}
	if c.ThreadImbalance == 0 {
		c.ThreadImbalance = 0.25
	}
	if c.HaloBytes == 0 {
		c.HaloBytes = 16 << 10
	}
	return c
}

// Hybrid builds the per-rank program.
func Hybrid(c HybridConfig) mpisim.Program {
	c = c.WithDefaults()
	return func(b *mpisim.B) {
		r := b.Rank()
		np := b.NP()
		left, right := r-1, r+1

		b.At(10).Enter("main")
		for it := 0; it < c.Iterations; it++ {
			b.At(20).Enter("iterate")
			b.At(22).Region("pack_boundaries", func() {
				// Serial phase: worker threads idle.
				b.Compute(c.SerialSec, fftWork(c.SerialSec))
			})
			b.At(26).Parallel("solve", c.Threads, func(tid int) (float64, counters.Work) {
				sec := c.ParallelSec
				if c.Threads > 1 {
					sec *= 1 + c.ThreadImbalance*float64(tid)/float64(c.Threads-1)
				}
				return sec, fftWork(sec)
			})
			b.At(32).Region("exchange", func() {
				if right < np {
					b.Send(right, 300, c.HaloBytes)
				}
				if left >= 0 {
					b.Send(left, 301, c.HaloBytes)
					b.Recv(left, 300)
				}
				if right < np {
					b.Recv(right, 301)
				}
			})
			b.At(38).Region("residual", func() {
				b.AllReduce(8)
			})
			b.Exit() // iterate
		}
		b.Exit() // main
	}
}

// HybridSimConfig returns the simulator configuration for the workload.
func HybridSimConfig(c HybridConfig) mpisim.Config {
	c = c.WithDefaults()
	return mpisim.Config{
		Program:  "hybrid",
		NumRanks: c.NP,
		NumNodes: c.Nodes,
		Seed:     c.Seed,
		NoiseAmp: c.NoiseAmp,
	}
}

// RunHybrid simulates one execution of the workload.
func RunHybrid(c HybridConfig) (*mpisim.Run, error) {
	c = c.WithDefaults()
	return mpisim.Simulate(HybridSimConfig(c), Hybrid(c))
}
