package cubexml

import (
	"bufio"
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"math"
	"strconv"

	"cube/internal/core"
)

// The fast write path. Metadata — small, irregular, full of strings that
// need escaping — still goes through encoding/xml via the shared
// buildDocMeta, so its bytes are the encoder's bytes by construction. The
// severity section — the bulk of any real file — is emitted by hand from
// the columnar store (core.EachSeverityRow): buffered writer, alloc-free
// value formatting (appendValue), no intermediate row strings, no
// pointer-keyed map materialisation. The two halves are joined by
// splicing the severity block in front of the encoder's closing </cube>
// tag; the differential test in fastwrite_test.go pins writeFast to
// writeLegacy byte for byte.

func writeFast(w io.Writer, e *core.Experiment) error {
	metrics, cnodes, threads := e.Metrics(), e.CallNodes(), e.Threads()
	// The legacy dense walk visits nothing when any severity dimension is
	// empty, so neither does the fast path — even if an (invalid)
	// experiment stores tuples.
	writeSev := len(metrics) > 0 && len(cnodes) > 0 && len(threads) > 0
	if writeSev {
		// Reject non-finite values before emitting any bytes: the legacy
		// writer builds the whole document first, so its errors never
		// leave a truncated file behind, and neither may ours.
		if err := checkEncodable(e, metrics, cnodes); err != nil {
			return err
		}
	}

	doc, _, _ := buildDocMeta(e)
	var meta bytes.Buffer
	meta.WriteString(xml.Header)
	enc := xml.NewEncoder(&meta)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("cubexml: encode: %w", err)
	}
	out := meta.Bytes()
	// Matrices is the last field of xCube and the encoder emits the
	// wrapper of an empty a>b slice, so the metadata document always ends
	// with an empty severity element before the root's closing tag. The
	// matrices are spliced into that wrapper.
	const tail = "\n  <severity></severity>\n</cube>"
	splice := len(out) - len(tail)
	if splice < 0 || string(out[splice:]) != tail {
		// Anything else means an encoder behaviour change — let the
		// reference writer produce the document.
		return writeLegacy(w, e)
	}

	bw := bufio.NewWriterSize(w, 64<<10)
	bw.Write(out[:splice])
	opened := false
	if writeSev {
		opened = emitSeverity(bw, e)
	}
	if !opened {
		bw.WriteString("\n  <severity></severity>")
	}
	bw.WriteString("\n</cube>\n")
	// bufio errors are sticky; one check at the end covers every write.
	return bw.Flush()
}

// checkEncodable scans the severity store for non-finite values in the
// same (metric, call node, thread) order as the legacy dense walk, so the
// first offender — and therefore the error message — is identical.
func checkEncodable(e *core.Experiment, metrics []*core.Metric, cnodes []*core.CallNode) error {
	var err error
	e.EachSeverityRow(func(mi, ci int, vals []float64) bool {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				err = fmt.Errorf("cubexml: severity of metric %q at %q is %v; refusing to encode non-finite values",
					metrics[mi].Name, cnodes[ci].Path(), v)
				return false
			}
		}
		return true
	})
	return err
}

// emitSeverity streams the severity section in the encoder's layout: one
// matrix per metric with stored rows, one row per call node, values
// space-separated in thread order, all-zero rows and matrices omitted.
// Row iteration order (metric, then call node enumeration order) is
// exactly the matrix order the legacy writer produces. It reports whether
// it wrote anything; with no non-zero rows the caller emits the empty
// wrapper instead.
func emitSeverity(bw *bufio.Writer, e *core.Experiment) bool {
	opened := false
	curMetric := -1
	var buf []byte // number scratch, reused across the whole section
	e.EachSeverityRow(func(mi, ci int, vals []float64) bool {
		nonZero := false
		for _, v := range vals {
			if v != 0 {
				nonZero = true
				break
			}
		}
		if !nonZero {
			return true
		}
		if !opened {
			bw.WriteString("\n  <severity>")
			opened = true
		}
		if mi != curMetric {
			if curMetric >= 0 {
				bw.WriteString("\n    </matrix>")
			}
			bw.WriteString("\n    <matrix metric=\"")
			buf = strconv.AppendInt(buf[:0], int64(mi), 10)
			bw.Write(buf)
			bw.WriteString("\">")
			curMetric = mi
		}
		bw.WriteString("\n      <row cnode=\"")
		buf = strconv.AppendInt(buf[:0], int64(ci), 10)
		bw.Write(buf)
		bw.WriteString("\">")
		for ti, v := range vals {
			if ti > 0 {
				bw.WriteByte(' ')
			}
			buf = appendValue(buf[:0], v)
			bw.Write(buf)
		}
		bw.WriteString("</row>")
		return true
	})
	if curMetric >= 0 {
		bw.WriteString("\n    </matrix>")
	}
	if opened {
		bw.WriteString("\n  </severity>")
	}
	return opened
}
