package cubexml

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"cube/internal/core"
)

// sample builds an experiment exercising all metadata features: multi-root
// metric forest, nested call tree with call sites and line numbers, a
// two-node system, negative and fractional severities, provenance.
func sample() *core.Experiment {
	e := core.New("sample run")
	e.Derived = true
	e.Operation = "difference"
	e.Parents = []string{"before", "after"}
	e.Attrs["host"] = "torc"
	e.Attrs["np"] = "4"

	time := e.NewMetric("Time", core.Seconds, "total time")
	mpi := time.NewChild("MPI", "mpi time")
	mpi.NewChild("Late Sender", "ls")
	e.NewMetric("Visits", core.Occurrences, "visits")

	mainR := e.NewRegion("main", "app.c", 1, 200)
	solver := e.NewRegion("solver", "app.c", 50, 150)
	recv := e.NewRegion("MPI_Recv", "libmpi", 0, 0)
	root := e.NewCallRoot(e.NewCallSite("", 0, mainR))
	s := root.NewChild(e.NewCallSite("app.c", 60, solver))
	r := s.NewChild(e.NewCallSite("app.c", 99, recv))

	threads := e.SingleThreadedSystem("cluster", 2, 4)
	for i, th := range threads {
		e.SetSeverity(time, root, th, 0.25)
		e.SetSeverity(mpi, r, th, float64(i)*1.5)
		e.SetSeverity(e.FindMetricByName("Late Sender"), r, th, -0.125*float64(i))
		e.SetSeverity(e.FindMetricByName("Visits"), s, th, 3)
	}
	return e
}

func TestRoundTrip(t *testing.T) {
	e := sample()
	var buf bytes.Buffer
	if err := Write(&buf, e); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if back.Fingerprint() != e.Fingerprint() {
		t.Errorf("round-trip fingerprint mismatch:\n--- wrote\n%s\n--- read\n%s", e.Fingerprint(), back.Fingerprint())
	}
	if back.Title != e.Title || back.Derived != e.Derived || back.Operation != e.Operation {
		t.Errorf("doc metadata lost")
	}
	if len(back.Parents) != 2 || back.Parents[0] != "before" {
		t.Errorf("parents lost: %v", back.Parents)
	}
	if back.Attrs["host"] != "torc" || back.Attrs["np"] != "4" {
		t.Errorf("attrs lost: %v", back.Attrs)
	}
}

func TestFileRoundTrip(t *testing.T) {
	e := sample()
	dir := t.TempDir()
	path := filepath.Join(dir, "x.cube")
	if err := WriteFile(path, e); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if back.Fingerprint() != e.Fingerprint() {
		t.Errorf("file round-trip mismatch")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.cube")); err == nil {
		t.Errorf("missing file accepted")
	}
}

func TestWriteOmitsZeroRows(t *testing.T) {
	e := sample()
	var buf bytes.Buffer
	if err := Write(&buf, e); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	// The Visits metric has severity only at main/solver: exactly one row
	// in its matrix.
	if strings.Count(s, "<row") == 0 {
		t.Fatalf("no severity rows written")
	}
	// Metrics without any severity (none here) produce no matrix; check
	// a fresh metric.
	e.NewMetric("Empty", core.Bytes, "")
	buf.Reset()
	if err := Write(&buf, e); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `metric="`+itoa(len(e.Metrics())-1)) {
		t.Errorf("empty metric got a matrix")
	}
}

func itoa(i int) string {
	return string(rune('0' + i))
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":           "not xml at all",
		"wrong version":     `<cube version="cube-go-99"></cube>`,
		"bad unit":          `<cube version="cube-go-1.0"><metrics><metric id="0"><name>X</name><uom>potatoes</uom></metric></metrics></cube>`,
		"dup metric id":     `<cube version="cube-go-1.0"><metrics><metric id="0"><name>X</name><uom>sec</uom></metric><metric id="0"><name>Y</name><uom>sec</uom></metric></metrics></cube>`,
		"site bad region":   `<cube version="cube-go-1.0"><program><csite id="0" callee="7"/></program></cube>`,
		"cnode bad site":    `<cube version="cube-go-1.0"><program><cnode id="0" csite="3"/></program></cube>`,
		"matrix bad metric": `<cube version="cube-go-1.0"><severity><matrix metric="9"><row cnode="0">1</row></matrix></severity></cube>`,
	}
	for name, doc := range cases {
		if _, err := Read(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadRowValueCountMismatch(t *testing.T) {
	e := sample()
	var buf bytes.Buffer
	if err := Write(&buf, e); err != nil {
		t.Fatal(err)
	}
	// Corrupt a severity row: drop a value.
	s := buf.String()
	i := strings.Index(s, "<row")
	j := strings.Index(s[i:], "</row>") + i
	row := s[i:j]
	cut := strings.LastIndex(row, " ")
	corrupted := s[:i] + row[:cut] + s[j:]
	if _, err := Read(strings.NewReader(corrupted)); err == nil || !strings.Contains(err.Error(), "one per thread") {
		t.Errorf("value-count mismatch not detected: %v", err)
	}
}

func TestReadBadValue(t *testing.T) {
	doc := `<cube version="cube-go-1.0">
  <doc><title>x</title></doc>
  <metrics><metric id="0"><name>T</name><uom>sec</uom></metric></metrics>
  <program><region id="0" name="main"/><csite id="0" callee="0"/><cnode id="0" csite="0"/></program>
  <system><machine name="m"><node name="n"><process rank="0"><thread id="0"/></process></node></machine></system>
  <severity><matrix metric="0"><row cnode="0">banana</row></matrix></severity>
</cube>`
	if _, err := Read(strings.NewReader(doc)); err == nil || !strings.Contains(err.Error(), "bad severity value") {
		t.Errorf("bad value not detected: %v", err)
	}
}

func TestReadRejectsInvalidExperiment(t *testing.T) {
	// Duplicate ranks: structurally parseable, semantically invalid.
	doc := `<cube version="cube-go-1.0">
  <doc><title>x</title></doc>
  <metrics><metric id="0"><name>T</name><uom>sec</uom></metric></metrics>
  <system><machine name="m"><node name="n">
    <process rank="0"><thread id="0"/></process>
    <process rank="0"><thread id="0"/></process>
  </node></machine></system>
</cube>`
	if _, err := Read(strings.NewReader(doc)); err == nil || !strings.Contains(err.Error(), "invalid experiment") {
		t.Errorf("invalid experiment accepted: %v", err)
	}
}

func TestFormatValueExact(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 123456789, 0.1, -0.125, 1e-9, math.Pi, 1e20} {
		s := formatValue(v)
		back, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if back != v {
			t.Errorf("formatValue(%v) = %q, parses to %v", v, s, back)
		}
	}
}

// Property: XML round-trips preserve random experiments exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		e := randomExperiment(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := Write(&buf, e); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		return back.Fingerprint() == e.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomExperiment builds small random valid experiments (mirrors the
// generator in core's tests; duplicated to keep test packages independent).
func randomExperiment(r *rand.Rand) *core.Experiment {
	e := core.New("rnd")
	root := e.NewMetric("Time", core.Seconds, "")
	for i := 0; i < r.Intn(3); i++ {
		root.NewChild("m"+string(rune('a'+i)), "")
	}
	if r.Intn(2) == 0 {
		e.NewMetric("Visits", core.Occurrences, "")
	}
	mainR := e.NewRegion("main", "app", 0, 0)
	croot := e.NewCallRoot(e.NewCallSite("app", 0, mainR))
	for i := 0; i < r.Intn(3); i++ {
		reg := e.NewRegion("f"+string(rune('a'+i)), "app", i, 0)
		croot.NewChild(e.NewCallSite("app", 10+i, reg))
	}
	e.Invalidate()
	np := 1 + r.Intn(3)
	if r.Intn(3) == 0 {
		// Multi-threaded system with varying thread counts per rank.
		per := make([]int, np)
		for i := range per {
			per[i] = 1 + r.Intn(3)
		}
		e.ThreadedSystem("m", 1+r.Intn(2), per)
	} else {
		e.SingleThreadedSystem("m", 1+r.Intn(2), np)
	}
	if r.Intn(3) == 0 {
		if topo, err := core.NewCartesian("grid", np); err == nil {
			e.SetTopology(topo)
		}
	}
	for _, m := range e.Metrics() {
		for _, c := range e.CallNodes() {
			for _, th := range e.Threads() {
				if r.Intn(2) == 0 {
					e.SetSeverity(m, c, th, r.NormFloat64()*1e3)
				}
			}
		}
	}
	return e
}

func TestDegenerateExperimentsRoundTrip(t *testing.T) {
	// Metadata-only experiment: no system, no severities.
	e := core.New("bare")
	e.NewMetric("Time", core.Seconds, "")
	mainR := e.NewRegion("main", "app", 0, 0)
	e.NewCallRoot(e.NewCallSite("", 0, mainR))
	var buf bytes.Buffer
	if err := Write(&buf, e); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != e.Fingerprint() {
		t.Errorf("bare experiment round-trip mismatch")
	}
	// Entirely empty experiment.
	empty := core.New("empty")
	buf.Reset()
	if err := Write(&buf, empty); err != nil {
		t.Fatal(err)
	}
	back2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back2.Title != "empty" || len(back2.Metrics()) != 0 {
		t.Errorf("empty experiment round-trip wrong")
	}
}

func TestTopologyRoundTrip(t *testing.T) {
	e := sample()
	topo, err := core.NewCartesian("grid", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	e.SetTopology(topo)
	var buf bytes.Buffer
	if err := Write(&buf, e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `<topology name="grid">`) {
		t.Fatalf("topology not serialised:\n%s", buf.String())
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Topology().Equal(topo) {
		t.Errorf("topology round-trip mismatch")
	}
	// A bad coordinate value errors.
	doc := strings.Replace(bufString(e, t), `<coord rank="0">0 0</coord>`, `<coord rank="0">x y</coord>`, 1)
	if _, err := Read(strings.NewReader(doc)); err == nil {
		t.Errorf("bad topology coordinate accepted")
	}
	// An invalid topology (unknown rank) is rejected via validation.
	doc2 := strings.Replace(bufString(e, t), `<coord rank="0">`, `<coord rank="77">`, 1)
	if _, err := Read(strings.NewReader(doc2)); err == nil {
		t.Errorf("topology with unknown rank accepted")
	}
}

func bufString(e *core.Experiment, t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, e); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestWriteToBrokenWriter(t *testing.T) {
	e := sample()
	if err := Write(failingWriter{}, e); err == nil {
		t.Errorf("write to failing writer succeeded")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, os.ErrClosed }

// TestFormatValueBoundaries pins the integer/float switchover in
// formatValue: values at and around the ±1e15 threshold, near-integer
// values, and extreme magnitudes must all re-parse to the exact bits that
// were written.
func TestFormatValueBoundaries(t *testing.T) {
	cases := []float64{
		1e15, -1e15, // first values on the FormatFloat side of the switch
		1e15 - 1, -(1e15 - 1), // last values formatted as integers
		1e15 + 2, -(1e15 + 2),
		999999999999999.5, // fractional just below the threshold
		1 << 52, -(1 << 52),
		0.1 + 0.2, 1.0000000000000002, -0.5, 0.0625,
		math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
	}
	for _, v := range cases {
		s := formatValue(v)
		back, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("formatValue(%v) = %q does not parse: %v", v, s, err)
		}
		if back != v {
			t.Errorf("formatValue(%v) = %q re-parses to %v", v, s, back)
		}
	}
}

// TestSeverityBoundaryRoundTrip drives the formatValue boundaries through a
// full write-read cycle.
func TestSeverityBoundaryRoundTrip(t *testing.T) {
	for _, v := range []float64{1e15, -(1e15 - 1), 1e15 + 2, 999999999999999.5, 0.1 + 0.2} {
		e := sample()
		e.SetSeverity(e.Metrics()[0], e.CallNodes()[0], e.Threads()[0], v)
		back, err := Read(strings.NewReader(bufString(e, t)))
		if err != nil {
			t.Fatalf("v=%v: %v", v, err)
		}
		if got := back.Severity(back.Metrics()[0], back.CallNodes()[0], back.Threads()[0]); got != v {
			t.Errorf("severity %v round-tripped to %v", v, got)
		}
	}
}

// TestNonFiniteSeverityRejected pins the boundary policy for non-finite
// severities: the writer refuses to encode them and the reader refuses to
// decode them — inside the core algebra they propagate with IEEE-754
// semantics, but they never cross the file format.
func TestNonFiniteSeverityRejected(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		e := sample()
		e.SetSeverity(e.Metrics()[0], e.CallNodes()[0], e.Threads()[0], v)
		var buf bytes.Buffer
		if err := Write(&buf, e); err == nil {
			t.Errorf("severity %v encoded without error", v)
		}
	}
	// Read side: patch a well-formed document's severity text.
	for _, bad := range []string{"NaN", "Inf", "-Inf", "+Inf"} {
		doc := strings.Replace(bufString(sample(), t), ">0.25 0.25", ">"+bad+" 0.25", 1)
		if !strings.Contains(doc, bad+" 0.25") {
			t.Fatalf("fixture did not contain the expected severity row")
		}
		if _, err := Read(strings.NewReader(doc)); err == nil {
			t.Errorf("document with severity %q accepted", bad)
		} else if !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("severity %q rejected with unrelated error: %v", bad, err)
		}
	}
}
