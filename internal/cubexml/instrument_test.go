package cubexml

import (
	"bytes"
	"strings"
	"testing"

	"cube/internal/core"
	"cube/internal/obs"
)

func buildTiny(t *testing.T) *core.Experiment {
	t.Helper()
	e := core.New("tiny")
	m := e.NewMetric("Time", core.Seconds, "")
	root := e.NewCallRoot(e.NewCallSite("", 0, e.NewRegion("main", "app", 0, 0)))
	for _, th := range e.SingleThreadedSystem("mach", 1, 2) {
		e.SetSeverity(m, root, th, 1)
	}
	return e
}

func TestInstrumentCountsReadsAndWrites(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)

	var buf bytes.Buffer
	if err := Write(&buf, buildTiny(t)); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("cube_xml_writes_total"); got != 1 {
		t.Errorf("writes_total = %d, want 1", got)
	}
	if got := reg.CounterValue("cube_xml_write_bytes_total"); got != int64(buf.Len()) {
		t.Errorf("write_bytes_total = %d, want %d", got, buf.Len())
	}

	doc := buf.Bytes()
	if _, err := Read(bytes.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("cube_xml_reads_total"); got != 1 {
		t.Errorf("reads_total = %d, want 1", got)
	}
	if got := reg.CounterValue("cube_xml_read_bytes_total"); got != int64(len(doc)) {
		t.Errorf("read_bytes_total = %d, want %d", got, len(doc))
	}
	if got := reg.CounterValue("cube_xml_read_elements_total"); got <= 0 {
		t.Errorf("read_elements_total = %d, want > 0", got)
	}
	if got := reg.CounterValue("cube_xml_read_errors_total"); got != 0 {
		t.Errorf("read_errors_total = %d, want 0", got)
	}

	// A malformed document counts as an error, not a read.
	if _, err := Read(strings.NewReader("<cube><unclosed>")); err == nil {
		t.Fatal("malformed document parsed")
	}
	if got := reg.CounterValue("cube_xml_read_errors_total"); got == 0 {
		t.Errorf("read_errors_total = 0 after malformed read")
	}
}

func TestInstrumentCountsLimitRejections(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)

	deep := strings.Repeat("<a>", 60) + strings.Repeat("</a>", 60)
	if _, err := ReadLimited(strings.NewReader(deep), Limits{MaxDepth: 10}); err == nil {
		t.Fatal("depth bomb accepted")
	}
	if got := reg.CounterValue("cube_xml_limit_rejections_total"); got != 1 {
		t.Errorf("limit_rejections_total = %d, want 1", got)
	}
}

func TestInstrumentDisabledIsFree(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(nil)
	var buf bytes.Buffer
	if err := Write(&buf, buildTiny(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("cube_xml_reads_total"); got != 0 {
		t.Errorf("disabled instrumentation recorded reads: %d", got)
	}
}
