package cubexml

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"cube/internal/core"
)

// readAuto / readLegacy are the two sides of every equivalence check.
func readAuto(data []byte, lim Limits) (*core.Experiment, error) {
	return ReadBytes(context.Background(), data, ReadOptions{Limits: lim})
}

func readLegacy(data []byte, lim Limits) (*core.Experiment, error) {
	return ReadBytes(context.Background(), data, ReadOptions{Limits: lim, Engine: EngineLegacy})
}

// checkEquivalent asserts the auto engine is observationally identical to
// the legacy decoder on one document: same success/failure, identical
// error text, identical experiment (compared by fingerprint and by
// re-encoding).
func checkEquivalent(t *testing.T, name string, data []byte, lim Limits) {
	t.Helper()
	ea, erra := readAuto(data, lim)
	el, errl := readLegacy(data, lim)
	switch {
	case (erra == nil) != (errl == nil):
		t.Errorf("%s: engines disagree on success:\nauto:   %v\nlegacy: %v", name, erra, errl)
	case erra != nil:
		if erra.Error() != errl.Error() {
			t.Errorf("%s: error text differs:\nauto:   %v\nlegacy: %v", name, erra, errl)
		}
	default:
		if ea.Fingerprint() != el.Fingerprint() {
			t.Errorf("%s: fingerprints differ:\nauto:\n%s\nlegacy:\n%s", name, ea.Fingerprint(), el.Fingerprint())
		}
		var ba, bl bytes.Buffer
		if err := Write(&ba, ea); err != nil {
			t.Fatalf("%s: re-encode auto: %v", name, err)
		}
		if err := Write(&bl, el); err != nil {
			t.Fatalf("%s: re-encode legacy: %v", name, err)
		}
		if !bytes.Equal(ba.Bytes(), bl.Bytes()) {
			t.Errorf("%s: re-encoded documents differ", name)
		}
	}
}

// metaDoc wraps severity XML in a small but complete document: one metric
// tree (ids 0..2), call nodes 0..1, two threads.
func metaDoc(severity string) string {
	return `<?xml version="1.0" encoding="UTF-8"?>
<cube version="cube-go-1.0">
  <doc><title>eq</title></doc>
  <metrics>
    <metric id="0"><name>Time</name><uom>sec</uom>
      <metric id="1"><name>MPI</name><uom>sec</uom></metric>
    </metric>
    <metric id="2"><name>Visits</name><uom>occ</uom></metric>
  </metrics>
  <program>
    <region id="0" name="main"/>
    <csite id="0" callee="0"/>
    <cnode id="0" csite="0"><cnode id="1" csite="0"/></cnode>
  </program>
  <system><machine name="m"><node name="n">
    <process rank="0"><thread id="0"/><thread id="1"/></process>
  </node></machine></system>
  ` + severity + `
</cube>`
}

// TestEngineEquivalenceCorpus drives both engines over documents chosen to
// hit every branch of the fast path: its happy subset, every error it must
// reproduce verbatim, and every construct that forces the legacy fallback.
func TestEngineEquivalenceCorpus(t *testing.T) {
	cases := map[string]string{
		"plain":              metaDoc(`<severity><matrix metric="0"><row cnode="0">1.5 2</row></matrix></severity>`),
		"all metrics":        metaDoc(`<severity><matrix metric="0"><row cnode="0">1 2</row></matrix><matrix metric="1"><row cnode="1">3 4</row></matrix><matrix metric="2"><row cnode="0">5 6</row></matrix></severity>`),
		"matrices unordered": metaDoc(`<severity><matrix metric="2"><row cnode="0">1 2</row></matrix><matrix metric="0"><row cnode="1">3 4</row></matrix></severity>`),
		"rows unordered":     metaDoc(`<severity><matrix metric="0"><row cnode="1">1 2</row><row cnode="0">3 4</row></matrix></severity>`),
		"zero values":        metaDoc(`<severity><matrix metric="0"><row cnode="0">0 2</row><row cnode="1">0 0</row></matrix></severity>`),
		"empty severity":     metaDoc(`<severity></severity>`),
		"selfclosing sev":    metaDoc(`<severity/>`),
		"empty matrix":       metaDoc(`<severity><matrix metric="0"></matrix></severity>`),
		"selfclosing matrix": metaDoc(`<severity><matrix metric="0"/></severity>`),
		"selfclosing row":    metaDoc(`<severity><matrix metric="0"><row cnode="0"/></matrix></severity>`),
		"no severity":        metaDoc(``),
		"whitespace forms":   metaDoc("<severity><matrix metric=\"0\"><row cnode=\"0\">\t 1.5\r\n2 \n</row></matrix></severity>"),
		"value spellings":    metaDoc(`<severity><matrix metric="0"><row cnode="0">+1.25e2 -0.5</row><row cnode="1">1E-3 00012</row></matrix></severity>`),
		"long mantissa":      metaDoc(`<severity><matrix metric="0"><row cnode="0">0.30000000000000004 12345678901234567890123</row></matrix></severity>`),
		"extreme exponents":  metaDoc(`<severity><matrix metric="0"><row cnode="0">1e308 4.9e-324</row></matrix></severity>`),
		"trailing dot":       metaDoc(`<severity><matrix metric="0"><row cnode="0">5. .5</row></matrix></severity>`),

		// Errors the fast path must report with the legacy decoder's text.
		"unknown metric":    metaDoc(`<severity><matrix metric="9"><row cnode="0">1 2</row></matrix></severity>`),
		"unknown cnode":     metaDoc(`<severity><matrix metric="0"><row cnode="9">1 2</row></matrix></severity>`),
		"too few values":    metaDoc(`<severity><matrix metric="0"><row cnode="0">1</row></matrix></severity>`),
		"too many values":   metaDoc(`<severity><matrix metric="0"><row cnode="0">1 2 3</row></matrix></severity>`),
		"bad value":         metaDoc(`<severity><matrix metric="0"><row cnode="0">banana 2</row></matrix></severity>`),
		"underscore value":  metaDoc(`<severity><matrix metric="0"><row cnode="0">1_000 2</row></matrix></severity>`),
		"hex value":         metaDoc(`<severity><matrix metric="0"><row cnode="0">0x1p4 2</row></matrix></severity>`),
		"nan value":         metaDoc(`<severity><matrix metric="0"><row cnode="0">NaN 2</row></matrix></severity>`),
		"inf value":         metaDoc(`<severity><matrix metric="0"><row cnode="0">2 -Inf</row></matrix></severity>`),
		"second matrix err": metaDoc(`<severity><matrix metric="0"><row cnode="0">1 2</row></matrix><matrix metric="1"><row cnode="7">1 2</row></matrix></severity>`),
		"err order":         metaDoc(`<severity><matrix metric="0"><row cnode="0">bad 2</row></matrix><matrix metric="9"><row cnode="0">1 2</row></matrix></severity>`),

		// Outside the fast-path subset: must silently fall back.
		"entity in row":      metaDoc(`<severity><matrix metric="0"><row cnode="0">&#49; 2</row></matrix></severity>`),
		"entity named":       metaDoc(`<severity><matrix metric="0"><row cnode="0">1&amp;2 2</row></matrix></severity>`),
		"comment in sev":     metaDoc(`<severity><!-- c --><matrix metric="0"><row cnode="0">1 2</row></matrix></severity>`),
		"pi in severity":     metaDoc(`<severity><?p?><matrix metric="0"><row cnode="0">1 2</row></matrix></severity>`),
		"cdata in row":       metaDoc(`<severity><matrix metric="0"><row cnode="0"><![CDATA[1]]> 2</row></matrix></severity>`),
		"dup matrices":       metaDoc(`<severity><matrix metric="0"><row cnode="0">1 2</row></matrix><matrix metric="0"><row cnode="0">3 4</row></matrix></severity>`),
		"dup rows":           metaDoc(`<severity><matrix metric="0"><row cnode="0">1 2</row><row cnode="0">3 4</row></matrix></severity>`),
		"vertical tab":       metaDoc("<severity><matrix metric=\"0\"><row cnode=\"0\">1\v2</row></matrix></severity>"),
		"non-ascii row":      metaDoc(`<severity><matrix metric="0"><row cnode="0">1…2</row></matrix></severity>`),
		"doctype":            "<!DOCTYPE cube>" + metaDoc(``),
		"utf8 names":         strings.Replace(metaDoc(``), "<title>eq</title>", "<title>héllo &amp; 日本</title>", 1),
		"cdata title":        strings.Replace(metaDoc(``), "<title>eq</title>", "<title><![CDATA[raw <stuff>]]></title>", 1),
		"comment meta":       strings.Replace(metaDoc(``), "<metrics>", "<!-- c --><metrics>", 1),

		// Structural and metadata errors (canonical text via fallback).
		"wrong version":   `<cube version="cube-go-99"></cube>`,
		"bad unit":        `<cube version="cube-go-1.0"><metrics><metric id="0"><name>X</name><uom>potatoes</uom></metric></metrics></cube>`,
		"dup metric id":   `<cube version="cube-go-1.0"><metrics><metric id="0"><name>X</name><uom>sec</uom></metric><metric id="0"><name>Y</name><uom>sec</uom></metric></metrics></cube>`,
		"invalid exp":     `<cube version="cube-go-1.0"><system><machine name="m"><node name="n"><process rank="0"><thread id="0"/></process><process rank="0"><thread id="0"/></process></node></machine></system></cube>`,
		"mismatched tags": metaDoc(`<severity><matrix metric="0"></severity></matrix>`),
		"junk after root": metaDoc(``) + "trailing garbage",
		"empty doc":       "",
		"not xml":         "garbage",
		"bare root":       `<cube version="cube-go-1.0"></cube>`,
	}
	for name, doc := range cases {
		checkEquivalent(t, name, []byte(doc), DefaultLimits)
	}
}

// TestEngineEquivalenceTruncated cuts a writer-produced document at many
// offsets; both engines must fail identically on every prefix.
func TestEngineEquivalenceTruncated(t *testing.T) {
	data := []byte(bufString(sample(), t))
	for cut := 0; cut < len(data); cut += 97 {
		checkEquivalent(t, fmt.Sprintf("cut@%d", cut), data[:cut], DefaultLimits)
	}
}

// TestEngineEquivalenceLimits pins the Limits behaviour of the fast scan:
// identical errors and identical element accounting at the boundary.
func TestEngineEquivalenceLimits(t *testing.T) {
	data := []byte(bufString(sample(), t))
	elems := strings.Count(string(data), "<") - strings.Count(string(data), "</") - 1 // rough; exact below
	_ = elems
	for _, lim := range []Limits{
		{},                 // unlimited
		{MaxElements: 1},   // trips immediately
		{MaxElements: 10},  // trips inside metadata
		{MaxDepth: 2},      // trips on nesting
		{MaxDepth: 4},      // trips deeper
		DefaultLimits,      // passes
		{MaxElements: 500}, // passes
	} {
		checkEquivalent(t, fmt.Sprintf("lim=%+v", lim), data, lim)
	}
	deep := strings.Repeat("<a>", 60) + strings.Repeat("</a>", 60)
	checkEquivalent(t, "depth bomb", []byte(deep), Limits{MaxDepth: 10})
	flat := "<cube version=\"cube-go-1.0\">" + strings.Repeat("<attr key=\"k\" value=\"v\"></attr>", 50) + "</cube>"
	checkEquivalent(t, "element bomb", []byte(flat), Limits{MaxElements: 20})
}

// TestEngineEquivalenceQuick round-trips random experiments through both
// engines and also checks equivalence on randomly truncated variants.
func TestEngineEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExperiment(r)
		var buf bytes.Buffer
		if err := Write(&buf, e); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		data := buf.Bytes()
		checkEquivalent(t, fmt.Sprintf("seed=%d", seed), data, DefaultLimits)
		cut := r.Intn(len(data) + 1)
		checkEquivalent(t, fmt.Sprintf("seed=%d cut=%d", seed, cut), data[:cut], DefaultLimits)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestEngineFastNoFallback asserts the fast path handles every document
// this package writes without bailing to the legacy decoder — EngineFast
// errors precisely when a fallback would have happened.
func TestEngineFastNoFallback(t *testing.T) {
	docs := [][]byte{
		[]byte(bufString(sample(), t)),
		[]byte(metaDoc(`<severity><matrix metric="0"><row cnode="0">1.5 2</row></matrix></severity>`)),
	}
	for i := int64(0); i < 20; i++ {
		docs = append(docs, []byte(bufString(randomExperiment(rand.New(rand.NewSource(i))), t)))
	}
	for i, data := range docs {
		e, err := ReadBytes(context.Background(), data, ReadOptions{Limits: DefaultLimits, Engine: EngineFast})
		if err != nil {
			t.Fatalf("doc %d: fast engine fell back: %v", i, err)
		}
		legacy, err := readLegacy(data, DefaultLimits)
		if err != nil {
			t.Fatal(err)
		}
		if e.Fingerprint() != legacy.Fingerprint() {
			t.Fatalf("doc %d: fast result differs from legacy", i)
		}
	}
	// And the other side: a document outside the subset errors instead of
	// falling back.
	outside := []byte(metaDoc(`<severity><matrix metric="0"><row cnode="0">&#49; 2</row></matrix></severity>`))
	if _, err := ReadBytes(context.Background(), outside, ReadOptions{Limits: DefaultLimits, Engine: EngineFast}); err == nil {
		t.Fatal("EngineFast accepted a document outside the fast-path subset")
	} else if !errors.Is(err, errBail) {
		t.Fatalf("EngineFast error = %v, want errBail", err)
	}
}

// TestParallelMatrixIngest parses a document with many matrices — enough
// to fan out over all workers — and cross-checks against legacy. Run with
// -race this doubles as the data-race check on the parallel ingest.
func TestParallelMatrixIngest(t *testing.T) {
	e := core.New("wide")
	var metrics []*core.Metric
	for i := 0; i < 48; i++ {
		metrics = append(metrics, e.NewMetric(fmt.Sprintf("m%02d", i), core.Seconds, ""))
	}
	mainR := e.NewRegion("main", "app", 0, 0)
	var cnodes []*core.CallNode
	root := e.NewCallRoot(e.NewCallSite("app", 0, mainR))
	cnodes = append(cnodes, root)
	for i := 0; i < 30; i++ {
		cnodes = append(cnodes, root.NewChild(e.NewCallSite("app", i+1, mainR)))
	}
	threads := e.SingleThreadedSystem("m", 1, 4)
	r := rand.New(rand.NewSource(7))
	for _, m := range metrics {
		for _, c := range cnodes {
			for _, th := range threads {
				if r.Intn(3) != 0 {
					e.SetSeverity(m, c, th, r.NormFloat64())
				}
			}
		}
	}
	data := []byte(bufString(e, t))

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := ReadBytes(context.Background(), data, ReadOptions{Limits: DefaultLimits, Engine: EngineFast})
			if err != nil {
				t.Errorf("fast read: %v", err)
				return
			}
			if got.Fingerprint() != e.Fingerprint() {
				t.Error("parallel ingest changed the experiment")
			}
		}()
	}
	wg.Wait()
}

func TestParseReadEngine(t *testing.T) {
	for s, want := range map[string]ReadEngine{"": EngineAuto, "auto": EngineAuto, "fast": EngineFast, "legacy": EngineLegacy} {
		got, err := ParseReadEngine(s)
		if err != nil || got != want {
			t.Errorf("ParseReadEngine(%q) = %v, %v; want %v", s, got, err, want)
		}
		if s != "" && got.String() != s {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParseReadEngine("turbo"); err == nil {
		t.Error("ParseReadEngine accepted unknown engine")
	}
}

// TestReadInfoEquivalence checks the streaming statistics against a full
// parse, on fast-subset documents and on fallback-forcing ones.
func TestReadInfoEquivalence(t *testing.T) {
	docs := map[string]string{
		"sample":   bufString(sample(), t),
		"plain":    metaDoc(`<severity><matrix metric="0"><row cnode="0">1.5 2</row></matrix><matrix metric="2"><row cnode="1">-3 0.5</row></matrix></severity>`),
		"fallback": metaDoc(`<severity><matrix metric="0"><row cnode="0">&#49; 2</row></matrix></severity>`),
		"empty":    metaDoc(``),
	}
	for i := int64(0); i < 10; i++ {
		docs[fmt.Sprintf("rnd%d", i)] = bufString(randomExperiment(rand.New(rand.NewSource(i))), t)
	}
	for name, doc := range docs {
		info, err := ReadInfo(context.Background(), strings.NewReader(doc), ReadOptions{Limits: DefaultLimits})
		if err != nil {
			t.Fatalf("%s: ReadInfo: %v", name, err)
		}
		full, err := readLegacy([]byte(doc), DefaultLimits)
		if err != nil {
			t.Fatalf("%s: legacy read: %v", name, err)
		}
		if info.NonZero != full.NonZeroCount() {
			t.Errorf("%s: NonZero = %d, want %d", name, info.NonZero, full.NonZeroCount())
		}
		if got, want := len(info.Experiment.Threads()), len(full.Threads()); got != want {
			t.Errorf("%s: threads = %d, want %d", name, got, want)
		}
		// Per-metric totals, matched by metric path.
		wantTotals := map[string]float64{}
		full.EachSeverity(func(m *core.Metric, _ *core.CallNode, _ *core.Thread, v float64) {
			wantTotals[m.Path()] += v
		})
		gotTotals := map[string]float64{}
		for m, v := range info.MetricTotal {
			if v != 0 {
				gotTotals[m.Path()] = v
			}
		}
		for p, want := range wantTotals {
			if got := gotTotals[p]; math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Errorf("%s: total[%s] = %g, want %g", name, p, got, want)
			}
		}
		for p := range gotTotals {
			if _, ok := wantTotals[p]; !ok {
				t.Errorf("%s: unexpected total for %s", name, p)
			}
		}
		// Errors surface with the same text as a full read.
	}
	bad := metaDoc(`<severity><matrix metric="0"><row cnode="0">bad 2</row></matrix></severity>`)
	_, errInfo := ReadInfo(context.Background(), strings.NewReader(bad), ReadOptions{Limits: DefaultLimits})
	_, errRead := readLegacy([]byte(bad), DefaultLimits)
	if errInfo == nil || errRead == nil || errInfo.Error() != errRead.Error() {
		t.Errorf("info error mismatch:\ninfo: %v\nread: %v", errInfo, errRead)
	}
}

// TestParseFloatMatchesStrconv pins parseFloat to strconv.ParseFloat on
// spellings covering the fast path's accept and reject branches.
func TestParseFloatMatchesStrconv(t *testing.T) {
	inputs := []string{
		"0", "-0", "+0", "1", "-1", "42", "1.5", "-2.25", "0.1", ".5", "5.",
		"1e3", "1E3", "1e+3", "1e-3", "-1.25e2", "9007199254740992", "9007199254740993",
		"1e22", "1e23", "1e-22", "1e-23", "1e308", "1e309", "4.9e-324", "1e-400",
		"0.30000000000000004", "123456789012345678901234567890", "00012", "0.000", "000.000e00",
		"1e", "e5", ".", "", "-", "+", "1.2.3", "1_000", "0x10", "Inf", "-Inf", "NaN", "nan",
		"1e99999999999999999999", "-1e99999999999999999999", "9999999999999999999", "1.7976931348623157e308",
	}
	for i := int64(0); i < 200; i++ {
		r := rand.New(rand.NewSource(i))
		v := r.NormFloat64() * math.Pow(10, float64(r.Intn(40)-20))
		inputs = append(inputs,
			strconv.FormatFloat(v, 'g', -1, 64),
			strconv.FormatFloat(v, 'e', r.Intn(18), 64),
			strconv.FormatFloat(v, 'f', r.Intn(18), 64),
		)
	}
	for _, s := range inputs {
		got, gotErr := parseFloat([]byte(s))
		want, wantErr := strconv.ParseFloat(s, 64)
		if (gotErr == nil) != (wantErr == nil) {
			t.Errorf("parseFloat(%q): err %v, strconv err %v", s, gotErr, wantErr)
			continue
		}
		if gotErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Errorf("parseFloat(%q) error %q, want %q", s, gotErr, wantErr)
			}
			continue
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("parseFloat(%q) = %v (bits %x), strconv %v (bits %x)", s, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

// TestAppendValueBoundary pins the first value past the integer fast-path
// boundary to its shortest-float spelling: widening the bound would emit
// a rounded integer that no longer round-trips.
func TestAppendValueBoundary(t *testing.T) {
	if got := string(appendValue(nil, 1e15+1)); got != "1.000000000000001e+15" {
		t.Errorf("appendValue(1e15+1) = %q, want %q", got, "1.000000000000001e+15")
	}
	if got := string(appendValue(nil, 1e15-1)); got != "999999999999999" {
		t.Errorf("appendValue(1e15-1) = %q, want %q", got, "999999999999999")
	}
	for _, v := range []float64{0, -0.5, 1e15, -1e15, 1e15 + 1, -(1e15 + 1), 1e15 - 1, math.MaxFloat64, math.SmallestNonzeroFloat64, 0.1 + 0.2} {
		if got, want := string(appendValue(nil, v)), formatValue(v); got != want {
			t.Errorf("appendValue(%v) = %q, formatValue = %q", v, got, want)
		}
		back, err := strconv.ParseFloat(string(appendValue(nil, v)), 64)
		if err != nil || math.Float64bits(back) != math.Float64bits(v) {
			t.Errorf("appendValue(%v) does not round-trip: %v %v", v, back, err)
		}
	}
}
