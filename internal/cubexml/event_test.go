package cubexml

import (
	"bytes"
	"testing"

	"cube/internal/obs"
)

// TestReadWriteAttributeWideEvent asserts the codec attributes parse and
// encode byte counts (and scan element counts) to the wide event carried
// by the context, on both engines.
func TestReadWriteAttributeWideEvent(t *testing.T) {
	e := sample()
	var doc bytes.Buffer
	if err := Write(&doc, e); err != nil {
		t.Fatal(err)
	}

	for _, engine := range []ReadEngine{EngineAuto, EngineFast, EngineLegacy} {
		sink := obs.NewEventSink(4)
		ev := sink.NewEvent("cli", "test")
		ctx := obs.ContextWithEvent(t.Context(), ev)
		if _, err := ReadBytes(ctx, doc.Bytes(), ReadOptions{Limits: DefaultLimits, Engine: engine}); err != nil {
			t.Fatalf("engine %v: %v", engine, err)
		}
		f := ev.Fields()
		if f.XMLReadBytes != int64(doc.Len()) {
			t.Errorf("engine %v: xml_read_bytes = %d, want %d", engine, f.XMLReadBytes, doc.Len())
		}
		if f.XMLReadElems <= 0 {
			t.Errorf("engine %v: xml_read_elements = %d, want > 0", engine, f.XMLReadElems)
		}
	}

	// Encode attribution.
	sink := obs.NewEventSink(4)
	ev := sink.NewEvent("cli", "test")
	ctx := obs.ContextWithEvent(t.Context(), ev)
	var out bytes.Buffer
	if err := WriteContext(ctx, &out, e); err != nil {
		t.Fatal(err)
	}
	if got := ev.Fields().XMLWriteBytes; got != int64(out.Len()) {
		t.Errorf("xml_write_bytes = %d, want %d", got, out.Len())
	}

	// No event in the context: the codec must stay silent and correct.
	if _, err := ReadBytes(t.Context(), doc.Bytes(), ReadOptions{Limits: DefaultLimits}); err != nil {
		t.Fatal(err)
	}
}
