package cubexml

import (
	"math"
	"strconv"
)

// Severity value codec shared by the fast and legacy I/O paths.
//
// Reading: parseFloat converts the byte representation of one severity
// value without allocating for the forms this package itself emits
// (plain decimals with an optional exponent). The fast conversion is the
// classic Clinger fast path — exact when the decimal mantissa fits a
// float64 integer (≤ 2⁵³) and the scale is a power of ten that is itself
// exactly representable (10⁰…10²²): one multiplication or division of
// two exact values is correctly rounded by IEEE-754. Everything outside
// that window (hex floats, Inf/NaN spellings, underscores, very long
// digit strings) falls back to strconv.ParseFloat, so accepted inputs,
// results, and error text stay bit-identical to the legacy decoder.
//
// Writing: appendValue is the append-style twin of formatValue. The
// integer fast path is deliberately bounded by |v| < 1e15 with a STRICT
// comparison: the first value past the boundary, 1e15 + 1, must take the
// shortest-float form ("1.000000000000001e+15") — widening the bound or
// printing through a fixed precision would emit a rounded integer that
// no longer round-trips exactly. The boundary lives in exactly one place
// so the two writers cannot drift.

// pow10 holds the powers of ten exactly representable in float64.
var pow10 = [...]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10,
	1e11, 1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// parseFloat parses b as a float64 with strconv.ParseFloat semantics.
func parseFloat(b []byte) (float64, error) {
	if v, ok := parseFloatFast(b); ok {
		return v, nil
	}
	// Rare forms (and all syntax errors) go through strconv so error
	// values match the legacy decoder exactly. The string conversion
	// allocates, but only for inputs no writer of this format produces.
	return strconv.ParseFloat(string(b), 64)
}

// parseFloatFast handles sign, decimal digits, an optional fraction, and
// an optional decimal exponent. It reports ok only when the result is
// provably exact under the Clinger argument above; any other input —
// including anything syntactically suspect — is left to strconv.
func parseFloatFast(b []byte) (float64, bool) {
	i, n := 0, len(b)
	if n == 0 {
		return 0, false
	}
	neg := false
	switch b[0] {
	case '+':
		i++
	case '-':
		neg = true
		i++
	}
	var mant uint64
	digits := 0 // significant digits accumulated into mant
	exp := 0    // decimal exponent applied to mant
	sawDigit := false

	// Integer part. Leading zeros are skipped without consuming mantissa
	// capacity.
	for i < n {
		c := b[i]
		if c < '0' || c > '9' {
			break
		}
		sawDigit = true
		if digits == 0 && c == '0' {
			i++
			continue
		}
		if digits >= 19 {
			return 0, false // would not fit uint64 exactly
		}
		mant = mant*10 + uint64(c-'0')
		digits++
		i++
	}

	// Fraction.
	if i < n && b[i] == '.' {
		i++
		for i < n {
			c := b[i]
			if c < '0' || c > '9' {
				break
			}
			sawDigit = true
			switch {
			case digits == 0 && c == '0':
				exp-- // leading zero of a sub-one value: pure scaling
			case digits >= 19:
				if c != '0' {
					return 0, false
				}
				// Trailing zero beyond capacity: value unchanged.
			default:
				mant = mant*10 + uint64(c-'0')
				digits++
				exp--
			}
			i++
		}
	}
	if !sawDigit {
		return 0, false
	}

	// Exponent.
	if i < n && (b[i] == 'e' || b[i] == 'E') {
		i++
		esign := 1
		if i < n {
			switch b[i] {
			case '+':
				i++
			case '-':
				esign = -1
				i++
			}
		}
		if i >= n {
			return 0, false
		}
		e10 := 0
		for i < n {
			c := b[i]
			if c < '0' || c > '9' {
				return 0, false
			}
			if e10 < 1<<20 {
				e10 = e10*10 + int(c-'0')
			}
			i++
		}
		exp += esign * e10
	}
	if i != n {
		return 0, false // trailing bytes: underscores, hex, garbage
	}

	if mant > 1<<53 {
		return 0, false
	}
	var v float64
	switch {
	case mant == 0:
		v = 0
	case exp == 0:
		v = float64(mant)
	case exp > 0 && exp < len(pow10):
		v = float64(mant) * pow10[exp]
		if math.IsInf(v, 0) {
			return 0, false // overflow rounding differs; let strconv decide
		}
	case exp < 0 && -exp < len(pow10):
		v = float64(mant) / pow10[-exp]
	default:
		return 0, false
	}
	if neg {
		v = -v // preserves the sign of zero, like strconv
	}
	return v, true
}

// appendValue appends the canonical textual form of a severity value —
// the exact bytes formatValue returns — without allocating.
func appendValue(dst []byte, v float64) []byte {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.AppendInt(dst, int64(v), 10)
	}
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}
