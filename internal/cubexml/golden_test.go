package cubexml

import (
	"bytes"
	"testing"

	"cube/internal/core"
)

// TestGoldenFormat pins the exact on-disk representation of a small
// experiment. A change to this golden document is a file-format change:
// bump Version and keep a reader for the old format before updating it.
func TestGoldenFormat(t *testing.T) {
	e := core.New("golden")
	e.Derived = true
	e.Operation = "difference"
	e.Parents = []string{"a", "b"}
	e.Attrs["key"] = "value"
	timeM := e.NewMetric("Time", core.Seconds, "total")
	ls := timeM.NewChild("Late Sender", "")
	mainR := e.NewRegion("main", "app.c", 1, 9)
	recvR := e.NewRegion("MPI_Recv", "libmpi", 0, 0)
	root := e.NewCallRoot(e.NewCallSite("", 0, mainR))
	recv := root.NewChild(e.NewCallSite("app.c", 5, recvR))
	p := e.NewMachine("m").NewNode("n").NewProcess(0, "rank 0")
	t0 := p.NewThread(0, "")
	t1 := p.NewThread(1, "")
	e.SetSeverity(timeM, root, t0, 1.5)
	e.SetSeverity(ls, recv, t1, -0.25)

	var buf bytes.Buffer
	if err := Write(&buf, e); err != nil {
		t.Fatal(err)
	}
	const golden = `<?xml version="1.0" encoding="UTF-8"?>
<cube version="cube-go-1.0">
  <attr key="key" value="value"></attr>
  <doc>
    <title>golden</title>
    <derived>true</derived>
    <operation>difference</operation>
    <parents>
      <parent>a</parent>
      <parent>b</parent>
    </parents>
  </doc>
  <metrics>
    <metric id="0">
      <name>Time</name>
      <uom>sec</uom>
      <descr>total</descr>
      <metric id="1">
        <name>Late Sender</name>
        <uom>sec</uom>
      </metric>
    </metric>
  </metrics>
  <program>
    <region id="0" name="main" mod="app.c" begin="1" end="9"></region>
    <region id="1" name="MPI_Recv" mod="libmpi"></region>
    <csite id="0" callee="0"></csite>
    <csite id="1" file="app.c" line="5" callee="1"></csite>
    <cnode id="0" csite="0">
      <cnode id="1" csite="1"></cnode>
    </cnode>
  </program>
  <system>
    <machine name="m">
      <node name="n">
        <process rank="0" name="rank 0">
          <thread id="0"></thread>
          <thread id="1"></thread>
        </process>
      </node>
    </machine>
  </system>
  <severity>
    <matrix metric="0">
      <row cnode="0">1.5 0</row>
    </matrix>
    <matrix metric="1">
      <row cnode="1">0 -0.25</row>
    </matrix>
  </severity>
</cube>
`
	if got := buf.String(); got != golden {
		t.Errorf("format drifted from golden document.\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}

	// And the golden document itself parses back to the same experiment.
	back, err := Read(bytes.NewReader([]byte(golden)))
	if err != nil {
		t.Fatalf("golden document unreadable: %v", err)
	}
	if back.Fingerprint() != e.Fingerprint() {
		t.Errorf("golden document round-trip mismatch")
	}
}
