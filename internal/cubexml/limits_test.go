package cubexml

import (
	"errors"
	"strconv"
	"strings"
	"testing"

	"cube/internal/core"
)

func limitsExperiment(t *testing.T) *core.Experiment {
	t.Helper()
	e := core.New("lim")
	m := e.NewMetric("Time", core.Seconds, "")
	root := e.NewCallRoot(e.NewCallSite("", 0, e.NewRegion("main", "", 0, 0)))
	for _, th := range e.SingleThreadedSystem("m", 1, 2) {
		e.SetSeverity(m, root, th, 1)
	}
	return e
}

// deepDoc builds a syntactically valid document whose metric tree is
// nested n levels deep.
func deepDoc(n int) string {
	var sb strings.Builder
	sb.WriteString(`<cube version="cube-go-1.0"><doc><title>bomb</title></doc><metrics>`)
	for i := 0; i < n; i++ {
		sb.WriteString(`<metric id="`)
		sb.WriteString(strconv.Itoa(i))
		sb.WriteString(`"><name>m</name><uom>sec</uom>`)
	}
	for i := 0; i < n; i++ {
		sb.WriteString(`</metric>`)
	}
	sb.WriteString(`</metrics><program></program><system></system></cube>`)
	return sb.String()
}

func TestReadLimitedAcceptsNormalFile(t *testing.T) {
	e := limitsExperiment(t)
	var sb strings.Builder
	if err := Write(&sb, e); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLimited(strings.NewReader(sb.String()), DefaultLimits)
	if err != nil {
		t.Fatalf("default limits rejected a normal file: %v", err)
	}
	if got.Fingerprint() != e.Fingerprint() {
		t.Errorf("round trip changed the experiment")
	}
}

func TestReadLimitedDepthBomb(t *testing.T) {
	doc := deepDoc(400)
	_, err := ReadLimited(strings.NewReader(doc), Limits{MaxDepth: 200})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("depth bomb not rejected with ErrLimit: %v", err)
	}
	// With a generous depth the same document fails validation or unit
	// checks, not the limit scan.
	if _, err := ReadLimited(strings.NewReader(doc), Limits{MaxDepth: 1000}); errors.Is(err, ErrLimit) {
		t.Fatalf("generous depth still hit the limit: %v", err)
	}
}

func TestReadLimitedElementBomb(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`<cube version="cube-go-1.0"><doc><title>x</title></doc><metrics>`)
	for i := 0; i < 2000; i++ {
		sb.WriteString(`<metric id="` + strconv.Itoa(i) + `"><name>m</name><uom>sec</uom></metric>`)
	}
	sb.WriteString(`</metrics><program></program><system></system></cube>`)
	_, err := ReadLimited(strings.NewReader(sb.String()), Limits{MaxElements: 1000})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("element bomb not rejected with ErrLimit: %v", err)
	}
}

func TestReadLimitedZeroDisables(t *testing.T) {
	doc := deepDoc(250) // over DefaultLimits.MaxDepth? no: 200 < 250's nesting +3
	if _, err := ReadLimited(strings.NewReader(doc), Limits{}); errors.Is(err, ErrLimit) {
		t.Fatalf("zero limits should disable the scan: %v", err)
	}
}

func TestReadEnforcesDefaultLimits(t *testing.T) {
	_, err := Read(strings.NewReader(deepDoc(400)))
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("Read did not apply DefaultLimits: %v", err)
	}
}

func TestReadLimitedMalformedStillSyntaxError(t *testing.T) {
	_, err := ReadLimited(strings.NewReader("<cube><unclosed"), DefaultLimits)
	if err == nil || errors.Is(err, ErrLimit) {
		t.Fatalf("malformed doc should be a decode error, got %v", err)
	}
}
