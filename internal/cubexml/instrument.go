package cubexml

import (
	"io"
	"sync/atomic"

	"cube/internal/obs"
)

// I/O instrumentation. When enabled via Instrument, the codec records:
//
//	cube_xml_reads_total                 completed parses
//	cube_xml_read_errors_total           failed parses (syntax, validation)
//	cube_xml_read_bytes_total            bytes consumed by parses
//	cube_xml_read_elements_total         XML elements seen by the limit scan
//	cube_xml_limit_rejections_total      documents rejected by Limits
//	cube_xml_writes_total                completed serialisations
//	cube_xml_write_bytes_total           bytes produced by serialisations
//
// Byte counts are measured on the wire (the reader/writer passed in), so
// they reflect actual document sizes, not in-memory representations.

var xmlRegistry atomic.Pointer[obs.Registry]

// Instrument directs codec metrics into reg; nil disables them (the
// default). Like core.Instrument, the setting is process-wide.
func Instrument(reg *obs.Registry) {
	xmlRegistry.Store(reg)
}

// countingReader counts the bytes pulled through it.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// countingWriter counts the bytes pushed through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
