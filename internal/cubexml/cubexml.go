// Package cubexml stores CUBE experiments in the CUBE XML format and reads
// them back. A file consists of two parts, mirroring the data model: the
// metadata (metric forest, program dimension, system forest) and the
// severity function values, stored as a three-dimensional array with one
// dimension for the metric, one for the call path, and one for the thread.
//
// The public API deliberately stays small (the paper advertises a class
// interface with fewer than fifteen methods): Read, Write, ReadFile,
// WriteFile, and Version.
package cubexml

import (
	"bytes"
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"cube/internal/core"
	"cube/internal/obs"
)

// Version identifies the schema written by this package.
const Version = "cube-go-1.0"

// --- XML document types -------------------------------------------------------

type xCube struct {
	XMLName  xml.Name  `xml:"cube"`
	Version  string    `xml:"version,attr"`
	Attrs    []xAttr   `xml:"attr"`
	Doc      xDoc      `xml:"doc"`
	Metrics  []xMetric `xml:"metrics>metric"`
	Program  xProgram  `xml:"program"`
	Machines []xMach   `xml:"system>machine"`
	Topology *xTopo    `xml:"topology"`
	Matrices []xMatrix `xml:"severity>matrix"`
}

type xTopo struct {
	Name   string   `xml:"name,attr"`
	Dims   []int    `xml:"dim"`
	Coords []xCoord `xml:"coord"`
}

type xCoord struct {
	Rank   int    `xml:"rank,attr"`
	Values string `xml:",chardata"`
}

type xAttr struct {
	Key   string `xml:"key,attr"`
	Value string `xml:"value,attr"`
}

type xDoc struct {
	Title     string   `xml:"title"`
	Derived   bool     `xml:"derived"`
	Operation string   `xml:"operation,omitempty"`
	Parents   []string `xml:"parents>parent"`
}

type xMetric struct {
	ID       int       `xml:"id,attr"`
	Name     string    `xml:"name"`
	UOM      string    `xml:"uom"`
	Descr    string    `xml:"descr,omitempty"`
	Children []xMetric `xml:"metric"`
}

type xProgram struct {
	Regions []xRegion `xml:"region"`
	Sites   []xSite   `xml:"csite"`
	CNodes  []xCNode  `xml:"cnode"`
}

type xRegion struct {
	ID    int    `xml:"id,attr"`
	Name  string `xml:"name,attr"`
	Mod   string `xml:"mod,attr,omitempty"`
	Begin int    `xml:"begin,attr,omitempty"`
	End   int    `xml:"end,attr,omitempty"`
	Descr string `xml:"descr,omitempty"`
}

type xSite struct {
	ID     int    `xml:"id,attr"`
	File   string `xml:"file,attr,omitempty"`
	Line   int    `xml:"line,attr,omitempty"`
	Callee int    `xml:"callee,attr"`
}

type xCNode struct {
	ID       int      `xml:"id,attr"`
	Site     int      `xml:"csite,attr"`
	Children []xCNode `xml:"cnode"`
}

type xMach struct {
	Name  string  `xml:"name,attr"`
	Nodes []xNode `xml:"node"`
}

type xNode struct {
	Name  string  `xml:"name,attr"`
	Procs []xProc `xml:"process"`
}

type xProc struct {
	Rank    int       `xml:"rank,attr"`
	Name    string    `xml:"name,attr,omitempty"`
	Threads []xThread `xml:"thread"`
}

type xThread struct {
	ID   int    `xml:"id,attr"`
	Name string `xml:"name,attr,omitempty"`
}

type xMatrix struct {
	Metric int    `xml:"metric,attr"`
	Rows   []xRow `xml:"row"`
}

type xRow struct {
	CNode  int    `xml:"cnode,attr"`
	Values string `xml:",chardata"`
}

// --- Writing -------------------------------------------------------------------

// Write serialises the experiment to w in the CUBE XML format.
func Write(w io.Writer, e *core.Experiment) error {
	return WriteContext(context.Background(), w, e)
}

// WriteContext is Write carrying a context for tracing: the encode runs
// under a "cubexml.write" span (child of the span in ctx, or a root on
// the process tracer) annotated with the bytes and cells written. With
// tracing and metrics both disabled it is exactly Write.
func WriteContext(ctx context.Context, w io.Writer, e *core.Experiment) error {
	reg := xmlRegistry.Load()
	sp, _ := obs.StartSpanContext(ctx, "cubexml.write")
	ev := obs.EventFromContext(ctx)
	if reg == nil && sp == nil && ev == nil {
		return write(w, e)
	}
	cw := &countingWriter{w: w}
	err := write(cw, e)
	ev.AddXMLWrite(cw.n)
	if reg != nil {
		reg.Counter("cube_xml_write_bytes_total").Add(cw.n)
		if err == nil {
			reg.Counter("cube_xml_writes_total").Inc()
		}
	}
	if sp != nil {
		sp.SetAttr("bytes", cw.n)
		sp.SetAttr("cells", e.NonZeroCount())
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	return err
}

// write is the default encode path: the fast emitter of fastwrite.go,
// which produces bytes identical to writeLegacy (the differential tests
// in fastwrite_test.go hold it to that).
func write(w io.Writer, e *core.Experiment) error {
	return writeFast(w, e)
}

// writeLegacy is the original encoder-driven path, kept as the reference
// implementation: it builds the full document including severity matrices
// and hands it to encoding/xml.
func writeLegacy(w io.Writer, e *core.Experiment) error {
	doc, metricID, cnodeID := buildDocMeta(e)

	// Severity: the dense 3-D array, one matrix per metric, one row per
	// call node, one value per thread; all-zero rows and matrices are
	// omitted to keep files compact (absent tuples read back as zero).
	threads := e.Threads()
	var sb strings.Builder
	for _, m := range e.Metrics() {
		mi := metricID[m]
		var mx *xMatrix
		for _, c := range e.CallNodes() {
			ci := cnodeID[c]
			nonZero := false
			sb.Reset()
			for ti, t := range threads {
				v := e.Severity(m, c, t)
				if math.IsNaN(v) || math.IsInf(v, 0) {
					// The format carries no non-finite policy; reject at
					// the boundary rather than emit a file other readers
					// choke on (mirrors the check in decodeDoc).
					return fmt.Errorf("cubexml: severity of metric %q at %q is %v; refusing to encode non-finite values",
						m.Name, c.Path(), v)
				}
				if v != 0 {
					nonZero = true
				}
				if ti > 0 {
					sb.WriteByte(' ')
				}
				sb.WriteString(formatValue(v))
			}
			if !nonZero {
				continue
			}
			if mx == nil {
				doc.Matrices = append(doc.Matrices, xMatrix{Metric: mi})
				mx = &doc.Matrices[len(doc.Matrices)-1]
			}
			mx.Rows = append(mx.Rows, xRow{CNode: ci, Values: sb.String()})
		}
	}

	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("cubexml: encode: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// buildDocMeta builds the document's metadata — everything except the
// severity matrices — plus the id enumerations severity references use.
// Shared by both writers so their id assignment is identical by
// construction.
func buildDocMeta(e *core.Experiment) (xCube, map[*core.Metric]int, map[*core.CallNode]int) {
	doc := xCube{Version: Version}
	doc.Doc = xDoc{
		Title:     e.Title,
		Derived:   e.Derived,
		Operation: e.Operation,
		Parents:   e.Parents,
	}
	keys := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		doc.Attrs = append(doc.Attrs, xAttr{Key: k, Value: e.Attrs[k]})
	}

	// Metric forest with pre-order ids (the enumeration order of
	// Experiment.Metrics, so severity matrices can refer to ids).
	metricID := map[*core.Metric]int{}
	for i, m := range e.Metrics() {
		metricID[m] = i
	}
	var encodeMetric func(m *core.Metric) xMetric
	encodeMetric = func(m *core.Metric) xMetric {
		xm := xMetric{ID: metricID[m], Name: m.Name, UOM: string(m.Unit), Descr: m.Description}
		for _, c := range m.Children() {
			xm.Children = append(xm.Children, encodeMetric(c))
		}
		return xm
	}
	for _, r := range e.MetricRoots() {
		doc.Metrics = append(doc.Metrics, encodeMetric(r))
	}

	// Program dimension. Regions and call sites referenced by call nodes
	// are written even if the producer forgot to register them.
	regionID := map[*core.Region]int{}
	addRegion := func(r *core.Region) {
		if r == nil {
			return
		}
		if _, ok := regionID[r]; ok {
			return
		}
		id := len(regionID)
		regionID[r] = id
		doc.Program.Regions = append(doc.Program.Regions, xRegion{
			ID: id, Name: r.Name, Mod: r.Module, Begin: r.BeginLine, End: r.EndLine, Descr: r.Description,
		})
	}
	for _, r := range e.Regions() {
		addRegion(r)
	}
	siteID := map[*core.CallSite]int{}
	addSite := func(s *core.CallSite) {
		if s == nil {
			return
		}
		if _, ok := siteID[s]; ok {
			return
		}
		addRegion(s.Callee)
		id := len(siteID)
		siteID[s] = id
		doc.Program.Sites = append(doc.Program.Sites, xSite{
			ID: id, File: s.File, Line: s.Line, Callee: regionID[s.Callee],
		})
	}
	for _, s := range e.CallSites() {
		addSite(s)
	}
	cnodeID := map[*core.CallNode]int{}
	for i, n := range e.CallNodes() {
		cnodeID[n] = i
		addSite(n.Site)
	}
	var encodeCNode func(n *core.CallNode) xCNode
	encodeCNode = func(n *core.CallNode) xCNode {
		xn := xCNode{ID: cnodeID[n], Site: siteID[n.Site]}
		for _, c := range n.Children() {
			xn.Children = append(xn.Children, encodeCNode(c))
		}
		return xn
	}
	for _, r := range e.CallRoots() {
		doc.Program.CNodes = append(doc.Program.CNodes, encodeCNode(r))
	}

	// System forest.
	for _, mach := range e.Machines() {
		xm := xMach{Name: mach.Name}
		for _, nd := range mach.Nodes() {
			xn := xNode{Name: nd.Name}
			for _, p := range nd.Processes() {
				xp := xProc{Rank: p.Rank, Name: p.Name}
				for _, t := range p.Threads() {
					xp.Threads = append(xp.Threads, xThread{ID: t.ID, Name: t.Name})
				}
				xn.Procs = append(xn.Procs, xp)
			}
			xm.Nodes = append(xm.Nodes, xn)
		}
		doc.Machines = append(doc.Machines, xm)
	}

	// Optional Cartesian topology.
	if topo := e.Topology(); topo != nil {
		xt := &xTopo{Name: topo.Name, Dims: topo.Dims}
		for _, rank := range topo.SortedRanks() {
			var sb strings.Builder
			for i, c := range topo.Coords[rank] {
				if i > 0 {
					sb.WriteByte(' ')
				}
				sb.WriteString(strconv.Itoa(c))
			}
			xt.Coords = append(xt.Coords, xCoord{Rank: rank, Values: sb.String()})
		}
		doc.Topology = xt
	}

	return doc, metricID, cnodeID
}

func formatValue(v float64) string {
	return string(appendValue(nil, v))
}

// WriteFile writes the experiment to the named file.
func WriteFile(path string, e *core.Experiment) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, e); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// --- Reading -------------------------------------------------------------------

// Limits bounds the structural size of a document accepted by ReadLimited,
// protecting a service against hostile inputs (element bombs, pathological
// nesting) that would otherwise exhaust memory or stack before the
// experiment is even validated. A zero field disables that check.
type Limits struct {
	MaxElements int // total number of XML elements in the document
	MaxDepth    int // maximum element nesting depth
}

// DefaultLimits accepts every realistic CUBE file (millions of severity
// rows, metric/call trees hundreds of levels deep) while rejecting
// adversarial documents.
var DefaultLimits = Limits{MaxElements: 5_000_000, MaxDepth: 200}

// ErrLimit is wrapped by errors returned when a document exceeds Limits,
// so callers (e.g. the HTTP service) can map it to "request too large"
// rather than "malformed request".
var ErrLimit = errors.New("document exceeds size limits")

// Read parses a CUBE XML document from r and reconstructs the experiment,
// enforcing DefaultLimits.
func Read(r io.Reader) (*core.Experiment, error) {
	return ReadLimitedContext(context.Background(), r, DefaultLimits)
}

// ReadContext is Read carrying a context for tracing (see
// ReadLimitedContext).
func ReadContext(ctx context.Context, r io.Reader) (*core.Experiment, error) {
	return ReadLimitedContext(ctx, r, DefaultLimits)
}

// ReadLimited parses a CUBE XML document from r, enforcing the given
// structural limits. It uses the default (auto) engine: the fast byte
// scanner when the document is inside its subset, the legacy decoder
// otherwise — see ReadWith and ReadEngine for control over this choice.
func ReadLimited(r io.Reader, lim Limits) (*core.Experiment, error) {
	return ReadLimitedContext(context.Background(), r, lim)
}

// ReadLimitedContext is ReadLimited carrying a context for tracing: the
// parse runs under a "cubexml.read" span (child of the span in ctx, or a
// root on the process tracer) annotated with the elements scanned and
// bytes decoded.
func ReadLimitedContext(ctx context.Context, r io.Reader, lim Limits) (*core.Experiment, error) {
	return ReadWith(ctx, r, ReadOptions{Limits: lim})
}

func readLimited(r io.Reader, lim Limits, sp *obs.Span, ev *obs.Event) (*core.Experiment, error) {
	if lim.MaxElements <= 0 && lim.MaxDepth <= 0 {
		return decode(r, sp, ev)
	}
	reg := xmlRegistry.Load()
	scan := func(sr io.Reader) error {
		elems, err := checkLimits(sr, lim)
		sp.SetAttr("elements", elems)
		ev.AddXMLRead(0, elems)
		if reg != nil {
			reg.Counter("cube_xml_read_elements_total").Add(int64(elems))
			switch {
			case errors.Is(err, ErrLimit):
				reg.Counter("cube_xml_limit_rejections_total").Inc()
			case err != nil:
				// Syntax errors caught by the scan never reach the
				// decode pass; count them as failed reads here.
				reg.Counter("cube_xml_read_errors_total").Inc()
			}
		}
		return err
	}
	if s, ok := r.(io.Seeker); ok {
		if start, err := s.Seek(0, io.SeekCurrent); err == nil {
			if err := scan(r); err != nil {
				return nil, err
			}
			if _, err := s.Seek(start, io.SeekStart); err != nil {
				return nil, fmt.Errorf("cubexml: rewinding after limit scan: %w", err)
			}
			return decode(r, sp, ev)
		}
	}
	var buf bytes.Buffer
	if err := scan(io.TeeReader(r, &buf)); err != nil {
		return nil, err
	}
	return decode(&buf, sp, ev)
}

// checkLimits scans tokens up to the end of the root element, enforcing
// lim, and reports how many elements it saw. Syntax errors surface here
// with the same wrapping the decode pass would use.
func checkLimits(r io.Reader, lim Limits) (int, error) {
	dec := xml.NewDecoder(r)
	depth, elems := 0, 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return elems, nil
		}
		if err != nil {
			return elems, fmt.Errorf("cubexml: decode: %w", err)
		}
		switch tok.(type) {
		case xml.StartElement:
			elems++
			depth++
			if lim.MaxElements > 0 && elems > lim.MaxElements {
				return elems, fmt.Errorf("cubexml: %w: more than %d elements", ErrLimit, lim.MaxElements)
			}
			if lim.MaxDepth > 0 && depth > lim.MaxDepth {
				return elems, fmt.Errorf("cubexml: %w: elements nested deeper than %d", ErrLimit, lim.MaxDepth)
			}
		case xml.EndElement:
			depth--
			if depth == 0 {
				// End of the root element: the decode pass ignores
				// anything after it, so stop scanning here too.
				return elems, nil
			}
		}
	}
}

func decode(r io.Reader, sp *obs.Span, ev *obs.Event) (*core.Experiment, error) {
	reg := xmlRegistry.Load()
	if reg == nil && sp == nil && ev == nil {
		return decodeDoc(r)
	}
	cr := &countingReader{r: r}
	e, err := decodeDoc(cr)
	ev.AddXMLRead(cr.n, 0)
	if reg != nil {
		reg.Counter("cube_xml_read_bytes_total").Add(cr.n)
		if err != nil {
			reg.Counter("cube_xml_read_errors_total").Inc()
		} else {
			reg.Counter("cube_xml_reads_total").Inc()
		}
	}
	sp.SetAttr("bytes", cr.n)
	return e, err
}

func decodeDoc(r io.Reader) (*core.Experiment, error) {
	var doc xCube
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("cubexml: decode: %w", err)
	}
	e, metricByID, cnodeByID, err := buildFromDoc(&doc)
	if err != nil {
		return nil, err
	}
	if err := applySeverity(e, doc.Matrices, metricByID, cnodeByID); err != nil {
		return nil, err
	}
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("cubexml: file describes an invalid experiment: %w", err)
	}
	return e, nil
}

// buildMeta decodes a document (with or without its severity sections)
// and builds the metadata experiment. The fast read path feeds it the
// document with severity spliced out; the id maps let the caller resolve
// severity references itself.
func buildMeta(r io.Reader) (*core.Experiment, map[int]*core.Metric, map[int]*core.CallNode, error) {
	var doc xCube
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, nil, nil, fmt.Errorf("cubexml: decode: %w", err)
	}
	return buildFromDoc(&doc)
}

// buildFromDoc constructs the metadata dimensions of the experiment from
// the decoded document: everything except the severity matrices.
//
// Metadata vocabulary — metric/region/machine/node/process/thread names,
// units, module paths, call-site files — goes through the process-wide
// core.Intern table rather than a per-document map. Experiments from the
// same measurement campaign repeat the same small vocabulary, so a server
// holding hundreds of parsed experiments retains one copy of each name,
// and cross-experiment name comparisons in the merge hot path become
// pointer-equal for the common case.
func buildFromDoc(doc *xCube) (*core.Experiment, map[int]*core.Metric, map[int]*core.CallNode, error) {
	if doc.Version != "" && doc.Version != Version {
		return nil, nil, nil, fmt.Errorf("cubexml: unsupported version %q (want %q)", doc.Version, Version)
	}

	e := core.New(doc.Doc.Title)
	e.Derived = doc.Doc.Derived
	e.Operation = doc.Doc.Operation
	e.Parents = doc.Doc.Parents
	for _, a := range doc.Attrs {
		e.Attrs[a.Key] = a.Value
	}

	// Metric forest.
	metricByID := map[int]*core.Metric{}
	var buildMetric func(xm xMetric, parent *core.Metric) error
	buildMetric = func(xm xMetric, parent *core.Metric) error {
		if !core.ValidUnit(core.Unit(xm.UOM)) {
			return fmt.Errorf("cubexml: metric %q has invalid unit %q", xm.Name, xm.UOM)
		}
		xm.UOM = core.Intern(xm.UOM)
		var m *core.Metric
		if parent == nil {
			m = e.NewMetric(core.Intern(xm.Name), core.Unit(xm.UOM), xm.Descr)
		} else {
			if core.Unit(xm.UOM) != parent.Unit {
				return fmt.Errorf("cubexml: metric %q unit %q differs from parent unit %q", xm.Name, xm.UOM, parent.Unit)
			}
			m = parent.NewChild(core.Intern(xm.Name), xm.Descr)
		}
		if _, dup := metricByID[xm.ID]; dup {
			return fmt.Errorf("cubexml: duplicate metric id %d", xm.ID)
		}
		metricByID[xm.ID] = m
		for _, c := range xm.Children {
			if err := buildMetric(c, m); err != nil {
				return err
			}
		}
		return nil
	}
	for _, xm := range doc.Metrics {
		if err := buildMetric(xm, nil); err != nil {
			return nil, nil, nil, err
		}
	}

	// Program dimension.
	regionByID := map[int]*core.Region{}
	for _, xr := range doc.Program.Regions {
		if _, dup := regionByID[xr.ID]; dup {
			return nil, nil, nil, fmt.Errorf("cubexml: duplicate region id %d", xr.ID)
		}
		rg := e.NewRegion(core.Intern(xr.Name), core.Intern(xr.Mod), xr.Begin, xr.End)
		rg.Description = xr.Descr
		regionByID[xr.ID] = rg
	}
	siteByID := map[int]*core.CallSite{}
	for _, xs := range doc.Program.Sites {
		callee, ok := regionByID[xs.Callee]
		if !ok {
			return nil, nil, nil, fmt.Errorf("cubexml: call site %d references unknown region %d", xs.ID, xs.Callee)
		}
		if _, dup := siteByID[xs.ID]; dup {
			return nil, nil, nil, fmt.Errorf("cubexml: duplicate call site id %d", xs.ID)
		}
		siteByID[xs.ID] = e.NewCallSite(core.Intern(xs.File), xs.Line, callee)
	}
	cnodeByID := map[int]*core.CallNode{}
	var buildCNode func(xn xCNode, parent *core.CallNode) error
	buildCNode = func(xn xCNode, parent *core.CallNode) error {
		site, ok := siteByID[xn.Site]
		if !ok {
			return fmt.Errorf("cubexml: call node %d references unknown call site %d", xn.ID, xn.Site)
		}
		var n *core.CallNode
		if parent == nil {
			n = e.NewCallRoot(site)
		} else {
			n = parent.NewChild(site)
		}
		if _, dup := cnodeByID[xn.ID]; dup {
			return fmt.Errorf("cubexml: duplicate call node id %d", xn.ID)
		}
		cnodeByID[xn.ID] = n
		for _, c := range xn.Children {
			if err := buildCNode(c, n); err != nil {
				return err
			}
		}
		return nil
	}
	for _, xn := range doc.Program.CNodes {
		if err := buildCNode(xn, nil); err != nil {
			return nil, nil, nil, err
		}
	}

	// System forest.
	for _, xm := range doc.Machines {
		mach := e.NewMachine(core.Intern(xm.Name))
		for _, xn := range xm.Nodes {
			nd := mach.NewNode(core.Intern(xn.Name))
			for _, xp := range xn.Procs {
				p := nd.NewProcess(xp.Rank, core.Intern(xp.Name))
				for _, xt := range xp.Threads {
					p.NewThread(xt.ID, core.Intern(xt.Name))
				}
			}
		}
	}
	e.Invalidate()

	// Optional topology.
	if doc.Topology != nil {
		topo := &core.Topology{
			Name:   doc.Topology.Name,
			Dims:   doc.Topology.Dims,
			Coords: map[int][]int{},
		}
		for _, xc := range doc.Topology.Coords {
			fields := strings.Fields(xc.Values)
			coord := make([]int, 0, len(fields))
			for _, f := range fields {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, nil, nil, fmt.Errorf("cubexml: bad topology coordinate %q: %w", f, err)
				}
				coord = append(coord, v)
			}
			topo.Coords[xc.Rank] = coord
		}
		e.SetTopology(topo)
	}

	return e, metricByID, cnodeByID, nil
}

// applySeverity replays the decoded severity matrices into the experiment's
// map store; this is the legacy severity path the fast reader's parallel
// columnar ingest is measured against. SetSeverity semantics apply: zero
// values delete, repeated tuples overwrite.
func applySeverity(e *core.Experiment, matrices []xMatrix, metricByID map[int]*core.Metric, cnodeByID map[int]*core.CallNode) error {
	threads := e.Threads()
	for _, mx := range matrices {
		m, ok := metricByID[mx.Metric]
		if !ok {
			return fmt.Errorf("cubexml: severity matrix references unknown metric id %d", mx.Metric)
		}
		for _, row := range mx.Rows {
			c, ok := cnodeByID[row.CNode]
			if !ok {
				return fmt.Errorf("cubexml: severity row references unknown call node id %d", row.CNode)
			}
			fields := strings.Fields(row.Values)
			if len(fields) != len(threads) {
				return fmt.Errorf("cubexml: severity row for metric %d cnode %d has %d values, want %d (one per thread)",
					mx.Metric, row.CNode, len(fields), len(threads))
			}
			for ti, f := range fields {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return fmt.Errorf("cubexml: bad severity value %q: %w", f, err)
				}
				if math.IsNaN(v) || math.IsInf(v, 0) {
					// Reject non-finite severities right at the parse
					// boundary: Validate would catch them too, but only
					// after the whole document is decoded, and with a less
					// precise location.
					return fmt.Errorf("cubexml: non-finite severity %q for metric %d, call node %d, thread %d",
						f, mx.Metric, row.CNode, ti)
				}
				e.SetSeverity(m, c, threads[ti], v)
			}
		}
	}
	return nil
}

// ReadFile reads an experiment from the named file.
func ReadFile(path string) (*core.Experiment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
