package cubexml

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cube/internal/core"
)

// checkWriteEquivalent asserts the fast writer produces byte-identical
// output to the legacy encoding/xml writer, or fails with the same error.
func checkWriteEquivalent(t *testing.T, name string, e *core.Experiment) {
	t.Helper()
	var fast, legacy bytes.Buffer
	errf := writeFast(&fast, e)
	errl := writeLegacy(&legacy, e)
	switch {
	case (errf == nil) != (errl == nil):
		t.Errorf("%s: writers disagree:\nfast:   %v\nlegacy: %v", name, errf, errl)
	case errf != nil:
		if errf.Error() != errl.Error() {
			t.Errorf("%s: error text differs:\nfast:   %v\nlegacy: %v", name, errf, errl)
		}
	case !bytes.Equal(fast.Bytes(), legacy.Bytes()):
		t.Errorf("%s: output differs\nfast:\n%s\nlegacy:\n%s", name, firstDiff(fast.Bytes(), legacy.Bytes()), legacy.String())
	}
}

func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 60
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first difference at byte %d:\nfast:   %q\nlegacy: %q", i, a[lo:min(i+60, len(a))], b[lo:min(i+60, len(b))])
		}
	}
	return fmt.Sprintf("lengths differ: fast %d, legacy %d", len(a), len(b))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestWriteFastMatchesLegacy(t *testing.T) {
	cases := map[string]func() *core.Experiment{
		"empty":  func() *core.Experiment { return core.New("empty") },
		"sample": sample,
		"metadata only": func() *core.Experiment {
			e := sample()
			e.EachSeverity(func(m *core.Metric, c *core.CallNode, th *core.Thread, _ float64) {
				e.SetSeverity(m, c, th, 0)
			})
			return e
		},
		"no threads": func() *core.Experiment {
			e := core.New("no threads")
			e.NewMetric("Time", core.Seconds, "")
			r := e.NewRegion("main", "app", 0, 0)
			e.NewCallRoot(e.NewCallSite("app", 1, r))
			return e
		},
		"no metrics": func() *core.Experiment {
			e := core.New("no metrics")
			r := e.NewRegion("main", "app", 0, 0)
			e.NewCallRoot(e.NewCallSite("app", 1, r))
			e.SingleThreadedSystem("m", 1, 2)
			return e
		},
		"escaping": func() *core.Experiment {
			e := core.New(`title with <tags> & "quotes" and 'apostrophes'`)
			e.Operation = "diff <&>"
			e.Derived = true
			e.Parents = []string{"run <1>", "run & 2"}
			m := e.NewMetric("Time <wall> & more", core.Seconds, "desc with ]]> and <em>")
			r := e.NewRegion("fn<T>", `mod "x" & y`, 1, 2)
			c := e.NewCallRoot(e.NewCallSite(`file "a" <b>`, 3, r))
			th := e.SingleThreadedSystem(`mach & <node>`, 1, 1)
			e.SetSeverity(m, c, th[0], 1.25)
			return e
		},
		"boundary values": func() *core.Experiment {
			e := core.New("boundary")
			m := e.NewMetric("Time", core.Seconds, "")
			r := e.NewRegion("main", "app", 0, 0)
			c := e.NewCallRoot(e.NewCallSite("app", 1, r))
			ths := e.SingleThreadedSystem("m", 1, 8)
			for i, v := range []float64{1e15 + 1, 1e15 - 1, 1e15, -(1e15 + 1), 0.1 + 0.2, math.MaxFloat64, math.SmallestNonzeroFloat64, -42} {
				e.SetSeverity(m, c, ths[i], v)
			}
			return e
		},
		"nan rejected": func() *core.Experiment {
			e := core.New("nan")
			m := e.NewMetric("Time", core.Seconds, "")
			r := e.NewRegion("main", "app", 0, 0)
			c := e.NewCallRoot(e.NewCallSite("app", 1, r))
			th := e.SingleThreadedSystem("m", 1, 1)
			e.SetSeverity(m, c, th[0], math.NaN())
			return e
		},
		"inf rejected": func() *core.Experiment {
			e := core.New("inf")
			m := e.NewMetric("Time", core.Seconds, "")
			r := e.NewRegion("main", "app", 0, 0)
			c := e.NewCallRoot(e.NewCallSite("app", 1, r))
			th := e.SingleThreadedSystem("m", 1, 1)
			e.SetSeverity(m, c, th[0], math.Inf(-1))
			return e
		},
		"topology": func() *core.Experiment {
			e := sample()
			topo, err := core.NewCartesian("grid", 2, 1)
			if err != nil {
				t.Fatal(err)
			}
			e.SetTopology(topo)
			return e
		},
	}
	for name, mk := range cases {
		checkWriteEquivalent(t, name, mk())
	}
}

// TestWriteFastMatchesLegacyQuick differentially fuzzes the two writers
// over random experiments; any divergence in bytes or errors fails.
func TestWriteFastMatchesLegacyQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		checkWriteEquivalent(t, fmt.Sprintf("seed=%d", seed), randomExperiment(r))
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestWriteFastAfterIngest pins byte equivalence for columnar-backed
// experiments (the state produced by the fast reader), where the fast
// writer streams straight from the sorted block.
func TestWriteFastAfterIngest(t *testing.T) {
	data := []byte(bufString(sample(), t))
	e, err := ReadBytes(context.Background(), data, ReadOptions{Limits: DefaultLimits, Engine: EngineFast})
	if err != nil {
		t.Fatal(err)
	}
	checkWriteEquivalent(t, "ingested sample", e)
}

// benchExperiment builds a deterministic ~2.5 MB document: 24 metrics,
// 120 call nodes, 32 threads, two thirds of tuples non-zero.
func benchExperiment(tb testing.TB) (*core.Experiment, []byte) {
	e := core.New("bench")
	var metrics []*core.Metric
	for i := 0; i < 24; i++ {
		metrics = append(metrics, e.NewMetric(fmt.Sprintf("metric-%02d", i), core.Seconds, ""))
	}
	r := e.NewRegion("main", "app", 0, 0)
	root := e.NewCallRoot(e.NewCallSite("app", 0, r))
	cnodes := []*core.CallNode{root}
	for i := 1; i < 120; i++ {
		cnodes = append(cnodes, cnodes[i/4].NewChild(e.NewCallSite("app", i, r)))
	}
	threads := e.SingleThreadedSystem("cluster", 4, 8)
	rng := rand.New(rand.NewSource(42))
	for _, m := range metrics {
		for _, c := range cnodes {
			for _, th := range threads {
				if rng.Intn(3) != 0 {
					e.SetSeverity(m, c, th, rng.NormFloat64()*1e3)
				}
			}
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, e); err != nil {
		tb.Fatal(err)
	}
	return e, buf.Bytes()
}

func benchmarkRead(b *testing.B, engine ReadEngine) {
	_, data := benchExperiment(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBytes(context.Background(), data, ReadOptions{Limits: DefaultLimits, Engine: engine}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFast(b *testing.B)   { benchmarkRead(b, EngineFast) }
func BenchmarkReadLegacy(b *testing.B) { benchmarkRead(b, EngineLegacy) }

func BenchmarkReadInfo(b *testing.B) {
	_, data := benchExperiment(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadInfo(context.Background(), bytes.NewReader(data), ReadOptions{Limits: DefaultLimits}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkWrite(b *testing.B, w func(io.Writer, *core.Experiment) error) {
	e, data := benchExperiment(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w(io.Discard, e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteFast(b *testing.B)   { benchmarkWrite(b, writeFast) }
func BenchmarkWriteLegacy(b *testing.B) { benchmarkWrite(b, writeLegacy) }

// TestBenchDocInFastSubset keeps the benchmark honest: if the benchmark
// document ever falls out of the fast-path subset, BenchmarkReadFast
// would silently measure the legacy decoder.
func TestBenchDocInFastSubset(t *testing.T) {
	_, data := benchExperiment(t)
	if !strings.Contains(string(data), "<severity>") {
		t.Fatal("benchmark document has no severity section")
	}
	if _, err := ReadBytes(context.Background(), data, ReadOptions{Limits: DefaultLimits, Engine: EngineFast}); err != nil {
		t.Fatalf("benchmark document outside fast subset: %v", err)
	}
}
