package cubexml

import (
	"bytes"
	"errors"
	"fmt"
)

// This file is the front half of the fast read path: a single-pass byte
// lexer over a complete CUBE XML document that (a) enforces Limits with
// the same element/depth accounting as the legacy token scan and (b) maps
// the document's shape — the byte ranges of the <severity> sections and,
// inside them, every <matrix metric=…> and <row cnode=…>text</row> — so
// the severity values can be parsed straight out of the input buffer
// without ever materialising xml tokens for them.
//
// The lexer recognises the document shape this package's writer produces
// plus the obvious variations (attribute order and quoting, whitespace,
// comments and processing instructions between metadata elements,
// self-closing tags). Anything outside that subset — DOCTYPE directives,
// CDATA or entity references inside the severity section, prefixed
// element names, mismatched tags, a metric id appearing in two matrices
// (the legacy store's overwrite semantics would apply) — makes it stop
// with errBail, and the caller re-reads the buffered document through the
// legacy decoder, which is the semantics of record for every exotic
// input. Bailing is never an error the user sees; it is only ever slower.

// errBail marks a document outside the fast-path subset; the reader falls
// back to the legacy decoder (EngineAuto) or reports it (EngineFast).
var errBail = errors.New("cubexml: document outside the fast-path subset")

// rowShape locates one severity row in the input buffer.
type rowShape struct {
	cnode              int // cnode attribute (XML id, not enumeration index)
	textStart, textEnd int // the row's character data
}

// matrixShape locates one severity matrix in the input buffer.
type matrixShape struct {
	metricID int // metric attribute (XML id)
	rows     []rowShape
}

// scanResult is the document map the fast decoder consumes.
type scanResult struct {
	elements  int           // start elements up to the end of the root, stream order
	rootEnd   int           // offset just past the root end tag
	sevRanges [][2]int      // byte ranges of the <severity> elements, doc order
	matrices  []matrixShape // all matrices across all severity sections, doc order
}

// scan modes: outside any severity section, directly inside <severity>,
// directly inside <matrix>.
const (
	modeMeta = iota
	modeSeverity
	modeMatrix
)

var (
	nameSeverity = []byte("severity")
	nameMatrix   = []byte("matrix")
	nameRow      = []byte("row")
)

// scanDoc lexes data up to the end of its root element. It returns
// errBail for anything outside the fast-path subset (res is then
// partial), or a Limits violation with exactly the wrapping and
// element-order accounting of the legacy checkLimits scan.
func scanDoc(data []byte, lim Limits) (res scanResult, err error) {
	var stack [][]byte // open element names, root first
	mode := modeMeta
	sevStart := -1
	var metricSeen map[int]struct{}
	i, n := 0, len(data)

	for i < n {
		if data[i] != '<' {
			if mode == modeMeta && len(stack) > 0 {
				// Metadata character data is opaque to the scan; the
				// validated decoder interprets it later.
				j := bytes.IndexByte(data[i:], '<')
				if j < 0 {
					return res, errBail
				}
				i += j
				continue
			}
			// Prolog/epilog and the gaps between severity elements may
			// only hold whitespace.
			if !isXMLSpace(data[i]) {
				return res, errBail
			}
			i++
			continue
		}
		if i+1 >= n {
			return res, errBail
		}
		switch data[i+1] {
		case '?': // processing instruction (including the XML declaration)
			if mode != modeMeta {
				return res, errBail
			}
			j := bytes.Index(data[i+2:], []byte("?>"))
			if j < 0 {
				return res, errBail
			}
			i += 2 + j + 2
			continue
		case '!':
			if mode != modeMeta {
				return res, errBail
			}
			switch {
			case bytes.HasPrefix(data[i:], []byte("<!--")):
				j := bytes.Index(data[i+4:], []byte("-->"))
				if j < 0 {
					return res, errBail
				}
				i += 4 + j + 3
			case bytes.HasPrefix(data[i:], []byte("<![CDATA[")) && len(stack) > 0:
				j := bytes.Index(data[i+9:], []byte("]]>"))
				if j < 0 {
					return res, errBail
				}
				i += 9 + j + 3
			default: // DOCTYPE and other directives
				return res, errBail
			}
			continue
		case '/': // end tag
			j := bytes.IndexByte(data[i+2:], '>')
			if j < 0 {
				return res, errBail
			}
			name := data[i+2 : i+2+j]
			for len(name) > 0 && isXMLSpace(name[len(name)-1]) {
				name = name[:len(name)-1]
			}
			if len(stack) == 0 || !bytes.Equal(stack[len(stack)-1], name) {
				return res, errBail
			}
			stack = stack[:len(stack)-1]
			i += 2 + j + 1
			switch mode {
			case modeMatrix: // closed </matrix>
				mode = modeSeverity
			case modeSeverity: // closed </severity>
				res.sevRanges = append(res.sevRanges, [2]int{sevStart, i})
				mode = modeMeta
			}
			if len(stack) == 0 {
				res.rootEnd = i
				return res, nil
			}
			continue
		}

		// Start tag.
		tagStart := i
		name, attrs, selfClose, next, ok := lexStartTag(data, i)
		if !ok || bytes.IndexByte(name, ':') >= 0 {
			// Prefixed names can still bind to the unqualified decoder
			// fields; let the decoder sort out namespaces.
			return res, errBail
		}
		res.elements++
		if lim.MaxElements > 0 && res.elements > lim.MaxElements {
			return res, fmt.Errorf("cubexml: %w: more than %d elements", ErrLimit, lim.MaxElements)
		}
		if lim.MaxDepth > 0 && len(stack)+1 > lim.MaxDepth {
			return res, fmt.Errorf("cubexml: %w: elements nested deeper than %d", ErrLimit, lim.MaxDepth)
		}
		i = next

		switch mode {
		case modeMeta:
			if len(stack) == 1 && bytes.Equal(name, nameSeverity) {
				if selfClose {
					res.sevRanges = append(res.sevRanges, [2]int{tagStart, next})
					continue
				}
				sevStart = tagStart
				mode = modeSeverity
				stack = append(stack, name)
				continue
			}
			if selfClose {
				if len(stack) == 0 { // self-closing root
					res.rootEnd = next
					return res, nil
				}
				continue
			}
			stack = append(stack, name)

		case modeSeverity:
			if !bytes.Equal(name, nameMatrix) {
				return res, errBail
			}
			id, ok := intAttr(attrs, "metric")
			if !ok {
				return res, errBail
			}
			if metricSeen == nil {
				metricSeen = make(map[int]struct{}, 8)
			}
			if _, dup := metricSeen[id]; dup {
				// Two matrices for one metric: the legacy store's
				// last-write-wins semantics apply, which zero-skipping
				// cannot reproduce.
				return res, errBail
			}
			metricSeen[id] = struct{}{}
			res.matrices = append(res.matrices, matrixShape{metricID: id})
			if !selfClose {
				mode = modeMatrix
				stack = append(stack, name)
			}

		case modeMatrix:
			if !bytes.Equal(name, nameRow) {
				return res, errBail
			}
			cn, ok := intAttr(attrs, "cnode")
			if !ok {
				return res, errBail
			}
			m := &res.matrices[len(res.matrices)-1]
			if selfClose {
				m.rows = append(m.rows, rowShape{cnode: cn, textStart: next, textEnd: next})
				continue
			}
			// The row's character data runs to the next '<', which must
			// open this row's end tag; anything else (child elements,
			// comments, CDATA) is outside the subset. The text bytes
			// themselves are vetted later, when the values are parsed.
			lt := bytes.IndexByte(data[next:], '<')
			if lt < 0 {
				return res, errBail
			}
			textEnd := next + lt
			k := textEnd + 1
			if k >= n || data[k] != '/' {
				return res, errBail
			}
			k++
			if !bytes.HasPrefix(data[k:], nameRow) {
				return res, errBail
			}
			k += len(nameRow)
			for k < n && isXMLSpace(data[k]) {
				k++
			}
			if k >= n || data[k] != '>' {
				return res, errBail
			}
			m.rows = append(m.rows, rowShape{cnode: cn, textStart: next, textEnd: textEnd})
			i = k + 1
		}
	}
	// Input ended inside the document; the legacy decoder owns the
	// canonical truncation error.
	return res, errBail
}

func isXMLSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// isNameByte covers the ASCII subset of XML name characters. Names with
// characters outside it (unicode names) fail the lex and bail to the
// legacy decoder.
func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.' || c == ':'
}

// lexStartTag lexes the start tag at data[i] (data[i] == '<'): the element
// name, the raw attribute section (quote-aware, since '>' may legally
// appear inside attribute values), whether the tag self-closes, and the
// offset just past '>'.
func lexStartTag(data []byte, i int) (name, attrs []byte, selfClose bool, next int, ok bool) {
	n := len(data)
	j := i + 1
	for j < n && isNameByte(data[j]) {
		j++
	}
	if j == i+1 {
		return nil, nil, false, 0, false
	}
	name = data[i+1 : j]
	attrStart := j
	for {
		for j < n && isXMLSpace(data[j]) {
			j++
		}
		if j >= n {
			return nil, nil, false, 0, false
		}
		switch data[j] {
		case '>':
			return name, data[attrStart:j], false, j + 1, true
		case '/':
			if j+1 < n && data[j+1] == '>' {
				return name, data[attrStart:j], true, j + 2, true
			}
			return nil, nil, false, 0, false
		}
		// Attribute: name, '=', quoted value.
		k := j
		for k < n && isNameByte(data[k]) {
			k++
		}
		if k == j {
			return nil, nil, false, 0, false
		}
		for k < n && isXMLSpace(data[k]) {
			k++
		}
		if k >= n || data[k] != '=' {
			return nil, nil, false, 0, false
		}
		k++
		for k < n && isXMLSpace(data[k]) {
			k++
		}
		if k >= n || (data[k] != '"' && data[k] != '\'') {
			return nil, nil, false, 0, false
		}
		q := data[k]
		k++
		for k < n && data[k] != q {
			k++
		}
		if k >= n {
			return nil, nil, false, 0, false
		}
		j = k + 1
	}
}

// intAttr extracts an integer attribute from a lexed attribute section.
// An absent attribute reads as 0, matching the decoder's zero default;
// when the attribute repeats, the last occurrence wins, as it does in the
// decoder. ok is false when the value is not a plain decimal integer the
// decoder would accept identically.
func intAttr(attrs []byte, name string) (val int, ok bool) {
	ok = true
	i, n := 0, len(attrs)
	for {
		for i < n && isXMLSpace(attrs[i]) {
			i++
		}
		if i >= n {
			return val, ok
		}
		j := i
		for j < n && isNameByte(attrs[j]) {
			j++
		}
		an := attrs[i:j]
		for j < n && isXMLSpace(attrs[j]) {
			j++
		}
		if j >= n || attrs[j] != '=' {
			return 0, false // unreachable for sections lexStartTag accepted
		}
		j++
		for j < n && isXMLSpace(attrs[j]) {
			j++
		}
		if j >= n {
			return 0, false
		}
		q := attrs[j]
		j++
		k := j
		for k < n && attrs[k] != q {
			k++
		}
		if k >= n {
			return 0, false
		}
		if string(an) == name { // comparison does not allocate
			val, ok = atoiBytes(attrs[j:k])
			if !ok {
				return 0, false
			}
		}
		i = k + 1
	}
}

// atoiBytes parses a small decimal integer; anything strconv.Atoi would
// reject — or that might overflow — reports !ok so the document bails to
// the decoder's canonical handling.
func atoiBytes(b []byte) (int, bool) {
	if len(b) == 0 || len(b) > 18 {
		return 0, false
	}
	i, neg := 0, false
	switch b[0] {
	case '-':
		neg = true
		i = 1
	case '+':
		i = 1
	}
	if i == len(b) {
		return 0, false
	}
	v := 0
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int(c-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}
