package cubexml

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"cube/internal/core"
	"cube/internal/obs"
)

// The fast read path. The document is buffered once (pooled), mapped by
// the byte lexer in scan.go, and then split: metadata decodes through the
// existing validated encoding/xml pipeline with the severity sections
// spliced out of the stream, while the severity rows — the bulk of any
// real file — are parsed in parallel straight out of the buffer into the
// packed-key columnar store via core.SeverityIngest, one goroutine per
// <matrix>, bounded by GOMAXPROCS. No intermediate severity map, no xml
// tokens, no per-value string allocations.
//
// The engine switch mirrors the kernel layer's Auto|Kernel|Legacy split:
// the legacy decoder stays the executable specification, EngineAuto (the
// default everywhere) must be observationally identical to it — same
// experiments, same errors, same Limits accounting — and the equivalence
// property tests in fastread_test.go hold the two to that.

// ReadEngine selects the parser implementation.
type ReadEngine int

const (
	// EngineAuto runs the fast scanner and falls back silently to the
	// legacy decoder for documents outside the fast-path subset. This is
	// the default used by Read, ReadLimited, and friends.
	EngineAuto ReadEngine = iota
	// EngineFast runs the fast scanner and reports an error instead of
	// falling back; tests and benchmarks use it to assert the fast path
	// actually engaged.
	EngineFast
	// EngineLegacy is the original encoding/xml pipeline, kept as the
	// reference implementation the equivalence properties compare against.
	EngineLegacy
)

// ParseReadEngine parses a -read-engine flag value.
func ParseReadEngine(s string) (ReadEngine, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "fast":
		return EngineFast, nil
	case "legacy":
		return EngineLegacy, nil
	}
	return 0, fmt.Errorf("cubexml: unknown read engine %q (want auto, fast, or legacy)", s)
}

func (e ReadEngine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineFast:
		return "fast"
	case EngineLegacy:
		return "legacy"
	}
	return fmt.Sprintf("ReadEngine(%d)", int(e))
}

// ReadOptions bundles the knobs of a parse. The zero value means no
// structural limits and the auto engine.
type ReadOptions struct {
	Limits Limits     // structural caps; zero fields disable the checks
	Engine ReadEngine // parser selection; EngineAuto by default
}

// ReadWith parses a CUBE XML document from r under the given options,
// tracing the parse as a "cubexml.read" span.
func ReadWith(ctx context.Context, r io.Reader, opts ReadOptions) (*core.Experiment, error) {
	sp, _ := obs.StartSpanContext(ctx, "cubexml.read")
	ev := obs.EventFromContext(ctx)
	e, err := readWith(r, opts, sp, ev)
	if sp != nil {
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	return e, err
}

// ReadBytes parses a complete CUBE XML document held in memory. Callers
// that already own the bytes (the server's parse cache) skip the
// buffering copy this way.
func ReadBytes(ctx context.Context, data []byte, opts ReadOptions) (*core.Experiment, error) {
	sp, _ := obs.StartSpanContext(ctx, "cubexml.read")
	ev := obs.EventFromContext(ctx)
	var e *core.Experiment
	var err error
	if opts.Engine == EngineLegacy {
		e, err = readLimited(bytes.NewReader(data), opts.Limits, sp, ev)
	} else {
		e, err = readBytes(data, opts, sp, ev)
	}
	if sp != nil {
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	return e, err
}

// readBufPool recycles the document buffers of the fast path; parses of
// similar-sized files stop paying the io.ReadAll growth dance.
var readBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64<<10); return &b }}

func readWith(r io.Reader, opts ReadOptions, sp *obs.Span, ev *obs.Event) (*core.Experiment, error) {
	if opts.Engine == EngineLegacy {
		return readLimited(r, opts.Limits, sp, ev)
	}
	bp := readBufPool.Get().(*[]byte)
	data, err := readAllInto((*bp)[:0], r)
	*bp = data[:0]
	defer readBufPool.Put(bp)
	if err != nil {
		if reg := xmlRegistry.Load(); reg != nil {
			reg.Counter("cube_xml_read_errors_total").Inc()
		}
		// The same wrapping the legacy token scan gives reader failures.
		return nil, fmt.Errorf("cubexml: decode: %w", err)
	}
	return readBytes(data, opts, sp, ev)
}

// readAllInto is io.ReadAll appending into a caller-owned buffer.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

func readBytes(data []byte, opts ReadOptions, sp *obs.Span, ev *obs.Event) (*core.Experiment, error) {
	reg := xmlRegistry.Load()
	lim := opts.Limits
	limited := lim.MaxElements > 0 || lim.MaxDepth > 0
	res, serr := scanDoc(data, lim)
	switch {
	case serr == nil:
	case errors.Is(serr, ErrLimit):
		sp.SetAttr("elements", res.elements)
		ev.AddXMLRead(0, res.elements)
		if reg != nil {
			reg.Counter("cube_xml_read_elements_total").Add(int64(res.elements))
			reg.Counter("cube_xml_limit_rejections_total").Inc()
		}
		return nil, serr
	default: // outside the fast-path subset
		return fastFallback(data, opts, sp, ev)
	}
	e, err := fastDecode(data, &res)
	if errors.Is(err, errBail) {
		return fastFallback(data, opts, sp, ev)
	}
	recordFastRead(sp, ev, reg, &res, limited, len(data), err)
	return e, err
}

// recordFastRead mirrors the legacy pipeline's metrics and span
// annotations for a parse the fast path completed itself.
func recordFastRead(sp *obs.Span, ev *obs.Event, reg *obs.Registry, res *scanResult, limited bool, nbytes int, err error) {
	elems := 0
	if limited {
		// Elements are only counted when a limit scan ran, matching the
		// legacy pipeline; unlimited parses attribute bytes alone.
		elems = res.elements
		sp.SetAttr("elements", res.elements)
		if reg != nil {
			reg.Counter("cube_xml_read_elements_total").Add(int64(res.elements))
		}
	}
	ev.AddXMLRead(int64(nbytes), elems)
	sp.SetAttr("bytes", int64(nbytes))
	if reg == nil {
		return
	}
	reg.Counter("cube_xml_read_bytes_total").Add(int64(nbytes))
	if err != nil {
		reg.Counter("cube_xml_read_errors_total").Inc()
	} else {
		reg.Counter("cube_xml_reads_total").Inc()
	}
}

// fastFallback re-reads the buffered document through the full legacy
// pipeline — limit scan, decode, metrics, span annotations — so every
// document outside the fast-path subset gets the canonical result and
// the canonical error text.
func fastFallback(data []byte, opts ReadOptions, sp *obs.Span, ev *obs.Event) (*core.Experiment, error) {
	if opts.Engine == EngineFast {
		return nil, errBail
	}
	return readLimited(bytes.NewReader(data), opts.Limits, sp, ev)
}

// metaReader returns a reader over the document with the severity
// sections spliced out, feeding the metadata decoder exactly the elements
// it will interpret.
func metaReader(data []byte, res *scanResult) io.Reader {
	segs := make([]io.Reader, 0, len(res.sevRanges)+1)
	prev := 0
	for _, rg := range res.sevRanges {
		segs = append(segs, bytes.NewReader(data[prev:rg[0]]))
		prev = rg[1]
	}
	segs = append(segs, bytes.NewReader(data[prev:res.rootEnd]))
	return io.MultiReader(segs...)
}

// sevChunk is one matrix's parsed severity tuples.
type sevChunk struct {
	mi     int // metric enumeration index
	keys   []uint64
	vals   []float64
	sorted bool
	err    error
}

func fastDecode(data []byte, res *scanResult) (*core.Experiment, error) {
	e, metricByID, cnodeByID, err := buildMeta(metaReader(data, res))
	if err != nil {
		// Metadata errors bail so the legacy pipeline derives the
		// canonical message (decoder line numbers included) from the
		// unspliced document.
		return nil, errBail
	}

	// XML ids → enumeration indices. The metadata builder guarantees the
	// id maps are injective, so distinct ids mean distinct indices.
	nT := len(e.Threads())
	miByID := make(map[int]int, len(metricByID))
	{
		idx := make(map[*core.Metric]int, len(metricByID))
		for i, m := range e.Metrics() {
			idx[m] = i
		}
		for id, m := range metricByID {
			miByID[id] = idx[m]
		}
	}
	ciByID := make(map[int]int, len(cnodeByID))
	{
		idx := make(map[*core.CallNode]int, len(cnodeByID))
		for i, c := range e.CallNodes() {
			idx[c] = i
		}
		for id, c := range cnodeByID {
			ciByID[id] = idx[c]
		}
	}

	ing := e.NewSeverityIngest()
	chunks := make([]sevChunk, len(res.matrices))
	parseMatrices(data, res.matrices, chunks, miByID, ciByID, nT, ing)

	// First failing matrix in document order wins, matching the legacy
	// decoder's sequential walk. chunks is still in document order here.
	for i := range chunks {
		if err := chunks[i].err; err != nil {
			if errors.Is(err, errBail) {
				return nil, errBail
			}
			return nil, err
		}
	}

	// Matrices appear in the file in arbitrary metric order; the packed
	// key's most-significant component is the metric index, so ordering
	// chunks by it makes the concatenation globally sorted whenever each
	// chunk is internally sorted — Commit then skips the radix sort.
	sort.Slice(chunks, func(a, b int) bool { return chunks[a].mi < chunks[b].mi })
	total := 0
	allSorted := true
	for i := range chunks {
		total += len(chunks[i].keys)
		allSorted = allSorted && chunks[i].sorted
	}
	keys := make([]uint64, 0, total)
	vals := make([]float64, 0, total)
	for i := range chunks {
		keys = append(keys, chunks[i].keys...)
		vals = append(vals, chunks[i].vals...)
	}
	ing.Commit(keys, vals, allSorted)

	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("cubexml: file describes an invalid experiment: %w", err)
	}
	return e, nil
}

// parseMatrices fans the matrices out over up to GOMAXPROCS workers. Each
// matrix parses independently into its own chunk, so the only shared
// state is the read-only input and the result slot per matrix.
func parseMatrices(data []byte, ms []matrixShape, chunks []sevChunk, miByID, ciByID map[int]int, nT int, ing *core.SeverityIngest) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ms) {
		workers = len(ms)
	}
	if workers <= 1 {
		var spans [][2]int
		for i := range ms {
			chunks[i] = parseMatrix(data, &ms[i], miByID, ciByID, nT, ing, &spans)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var spans [][2]int // worker-local field-span scratch
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ms) {
					return
				}
				chunks[i] = parseMatrix(data, &ms[i], miByID, ciByID, nT, ing, &spans)
			}
		}()
	}
	wg.Wait()
}

// parseMatrix converts one matrix's rows into packed (key, value) pairs.
// Error messages are byte-identical to the legacy severity loop; rows
// whose semantics the fast path cannot reproduce (duplicate cnode ids —
// last-write-wins in the legacy store) report errBail.
func parseMatrix(data []byte, m *matrixShape, miByID, ciByID map[int]int, nT int, ing *core.SeverityIngest, spanScratch *[][2]int) sevChunk {
	mi, ok := miByID[m.metricID]
	if !ok {
		return sevChunk{err: fmt.Errorf("cubexml: severity matrix references unknown metric id %d", m.metricID)}
	}
	if dupRows(m.rows) {
		return sevChunk{err: errBail}
	}
	keys := make([]uint64, 0, len(m.rows)*nT)
	vals := make([]float64, 0, len(m.rows)*nT)
	sorted := true
	var lastKey uint64
	spans := *spanScratch
	for _, row := range m.rows {
		ci, ok := ciByID[row.cnode]
		if !ok {
			return sevChunk{err: fmt.Errorf("cubexml: severity row references unknown call node id %d", row.cnode)}
		}
		text := data[row.textStart:row.textEnd]
		var bail bool
		spans, bail = splitFields(text, spans[:0])
		if bail {
			*spanScratch = spans
			return sevChunk{err: errBail}
		}
		if len(spans) != nT {
			*spanScratch = spans
			return sevChunk{err: fmt.Errorf("cubexml: severity row for metric %d cnode %d has %d values, want %d (one per thread)",
				m.metricID, row.cnode, len(spans), nT)}
		}
		rowKey := ing.RowKey(mi, ci)
		for ti, f := range spans {
			fb := text[f[0]:f[1]]
			v, err := parseFloat(fb)
			if err != nil {
				*spanScratch = spans
				return sevChunk{err: fmt.Errorf("cubexml: bad severity value %q: %w", fb, err)}
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				*spanScratch = spans
				return sevChunk{err: fmt.Errorf("cubexml: non-finite severity %q for metric %d, call node %d, thread %d",
					fb, m.metricID, row.cnode, ti)}
			}
			if v == 0 {
				continue // absent tuples read back as zero; SetSeverity(0) deletes
			}
			k := rowKey + uint64(ti)
			if len(keys) > 0 && k <= lastKey {
				sorted = false
			}
			lastKey = k
			keys = append(keys, k)
			vals = append(vals, v)
		}
	}
	*spanScratch = spans
	return sevChunk{mi: mi, keys: keys, vals: vals, sorted: sorted}
}

// splitFields records the [start, end) spans of the whitespace-separated
// fields of text, reproducing strings.Fields over the character data the
// decoder would have produced. bail is true for bytes the decoder treats
// specially (entities), rejects (control characters), or whose whitespace
// classification needs unicode (anything non-ASCII) — those documents go
// to the legacy pipeline.
func splitFields(text []byte, spans [][2]int) (_ [][2]int, bail bool) {
	start := -1
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			if start >= 0 {
				spans = append(spans, [2]int{start, i})
				start = -1
			}
		case c == '&' || c >= 0x80 || c < 0x20:
			return spans, true
		default:
			if start < 0 {
				start = i
			}
		}
	}
	if start >= 0 {
		spans = append(spans, [2]int{start, len(text)})
	}
	return spans, false
}

// dupRows reports whether any cnode id repeats within one matrix. The
// common case — rows emitted in ascending cnode order — is decided with
// one comparison pass and no allocation.
func dupRows(rows []rowShape) bool {
	ascending := true
	for i := 1; i < len(rows); i++ {
		if rows[i].cnode <= rows[i-1].cnode {
			ascending = false
			break
		}
	}
	if ascending {
		return false
	}
	seen := make(map[int]struct{}, len(rows))
	for _, r := range rows {
		if _, dup := seen[r.cnode]; dup {
			return true
		}
		seen[r.cnode] = struct{}{}
	}
	return false
}

// --- Metadata-only reads ---------------------------------------------------------

// Info summarises a CUBE document without building its severity store:
// the metadata experiment plus streamed severity statistics. After a
// legacy fallback Experiment also carries the severities; the Info fields
// are authoritative either way.
type Info struct {
	// Experiment holds the document's metadata (metric forest, program
	// and system dimensions, topology, provenance).
	Experiment *core.Experiment
	// NonZero counts the non-zero severity tuples in the document.
	NonZero int
	// MetricTotal sums each metric's severity matrix; metrics without a
	// matrix are absent (read as 0).
	MetricTotal map[*core.Metric]float64
}

// ReadInfo reads the document's metadata and severity statistics without
// materialising the severity store — the cheap path for summaries over
// huge files (cube-info).
func ReadInfo(ctx context.Context, r io.Reader, opts ReadOptions) (*Info, error) {
	sp, _ := obs.StartSpanContext(ctx, "cubexml.read")
	sp.SetAttr("mode", "info")
	info, err := readInfo(r, opts, sp, obs.EventFromContext(ctx))
	if sp != nil {
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	return info, err
}

func readInfo(r io.Reader, opts ReadOptions, sp *obs.Span, ev *obs.Event) (*Info, error) {
	if opts.Engine == EngineLegacy {
		e, err := readLimited(r, opts.Limits, sp, ev)
		if err != nil {
			return nil, err
		}
		return infoFromExperiment(e), nil
	}
	bp := readBufPool.Get().(*[]byte)
	data, err := readAllInto((*bp)[:0], r)
	*bp = data[:0]
	defer readBufPool.Put(bp)
	if err != nil {
		if reg := xmlRegistry.Load(); reg != nil {
			reg.Counter("cube_xml_read_errors_total").Inc()
		}
		return nil, fmt.Errorf("cubexml: decode: %w", err)
	}

	reg := xmlRegistry.Load()
	lim := opts.Limits
	fullRead := func() (*Info, error) {
		e, err := readLimited(bytes.NewReader(data), lim, sp, ev)
		if err != nil {
			return nil, err
		}
		return infoFromExperiment(e), nil
	}
	res, serr := scanDoc(data, lim)
	switch {
	case serr == nil:
	case errors.Is(serr, ErrLimit):
		sp.SetAttr("elements", res.elements)
		ev.AddXMLRead(0, res.elements)
		if reg != nil {
			reg.Counter("cube_xml_read_elements_total").Add(int64(res.elements))
			reg.Counter("cube_xml_limit_rejections_total").Inc()
		}
		return nil, serr
	default:
		if opts.Engine == EngineFast {
			return nil, errBail
		}
		return fullRead()
	}
	info, err := infoDecode(data, &res)
	if errors.Is(err, errBail) {
		if opts.Engine == EngineFast {
			return nil, errBail
		}
		return fullRead()
	}
	recordFastRead(sp, ev, reg, &res, lim.MaxElements > 0 || lim.MaxDepth > 0, len(data), err)
	return info, err
}

// infoDecode streams the severity statistics with the same error
// semantics (messages and ordering) as a full decode.
func infoDecode(data []byte, res *scanResult) (*Info, error) {
	e, metricByID, cnodeByID, err := buildMeta(metaReader(data, res))
	if err != nil {
		return nil, errBail
	}
	nT := len(e.Threads())
	info := &Info{Experiment: e, MetricTotal: make(map[*core.Metric]float64, len(res.matrices))}
	var spans [][2]int
	for i := range res.matrices {
		m := &res.matrices[i]
		met, ok := metricByID[m.metricID]
		if !ok {
			return nil, fmt.Errorf("cubexml: severity matrix references unknown metric id %d", m.metricID)
		}
		if dupRows(m.rows) {
			return nil, errBail
		}
		total := 0.0
		for _, row := range m.rows {
			if _, ok := cnodeByID[row.cnode]; !ok {
				return nil, fmt.Errorf("cubexml: severity row references unknown call node id %d", row.cnode)
			}
			text := data[row.textStart:row.textEnd]
			var bail bool
			spans, bail = splitFields(text, spans[:0])
			if bail {
				return nil, errBail
			}
			if len(spans) != nT {
				return nil, fmt.Errorf("cubexml: severity row for metric %d cnode %d has %d values, want %d (one per thread)",
					m.metricID, row.cnode, len(spans), nT)
			}
			for ti, f := range spans {
				fb := text[f[0]:f[1]]
				v, err := parseFloat(fb)
				if err != nil {
					return nil, fmt.Errorf("cubexml: bad severity value %q: %w", fb, err)
				}
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("cubexml: non-finite severity %q for metric %d, call node %d, thread %d",
						fb, m.metricID, row.cnode, ti)
				}
				if v != 0 {
					info.NonZero++
					total += v
				}
			}
		}
		info.MetricTotal[met] = total
	}
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("cubexml: file describes an invalid experiment: %w", err)
	}
	return info, nil
}

// infoFromExperiment derives the statistics from a fully parsed
// experiment (legacy engine or fallback).
func infoFromExperiment(e *core.Experiment) *Info {
	info := &Info{Experiment: e, NonZero: e.NonZeroCount(), MetricTotal: map[*core.Metric]float64{}}
	e.EachSeverity(func(m *core.Metric, c *core.CallNode, t *core.Thread, v float64) {
		info.MetricTotal[m] += v
	})
	return info
}
