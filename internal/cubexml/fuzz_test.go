package cubexml

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead ensures the XML reader never panics and that any successfully
// parsed document re-serialises and re-parses to the same experiment
// (read-write-read identity).
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`<cube version="cube-go-1.0"></cube>`)
	f.Add(`<cube version="cube-go-1.0"><metrics><metric id="0"><name>T</name><uom>sec</uom></metric></metrics></cube>`)
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, doc string) {
		e, err := Read(strings.NewReader(doc))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, e); err != nil {
			t.Fatalf("parsed experiment unwritable: %v", err)
		}
		back, err := Read(&out)
		if err != nil {
			t.Fatalf("round-trip unreadable: %v", err)
		}
		if back.Fingerprint() != e.Fingerprint() {
			t.Fatalf("read-write-read changed the experiment")
		}
	})
}
