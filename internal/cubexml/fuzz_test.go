package cubexml

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead ensures the XML reader never panics and that any successfully
// parsed document re-serialises and re-parses to the same experiment
// (read-write-read identity).
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	// Severities at the formatValue integer/float switchover (±1e15) and
	// near-integer values, plus non-finite text the reader must reject
	// without panicking.
	for _, v := range []float64{1e15, -(1e15 - 1), 1e15 + 1, -(1e15 + 1), 1e15 + 2, 999999999999999.5, 0.1 + 0.2} {
		e := sample()
		e.SetSeverity(e.Metrics()[0], e.CallNodes()[0], e.Threads()[0], v)
		buf.Reset()
		if err := Write(&buf, e); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.String())
	}
	buf.Reset()
	if err := Write(&buf, sample()); err != nil {
		f.Fatal(err)
	}
	f.Add(strings.Replace(buf.String(), ">0.25 0.25", ">NaN 0.25", 1))
	f.Add(strings.Replace(buf.String(), ">0.25 0.25", ">-Inf 0.25", 1))
	f.Add(`<cube version="cube-go-1.0"></cube>`)
	f.Add(`<cube version="cube-go-1.0"><metrics><metric id="0"><name>T</name><uom>sec</uom></metric></metrics></cube>`)
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, doc string) {
		e, err := Read(strings.NewReader(doc))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, e); err != nil {
			t.Fatalf("parsed experiment unwritable: %v", err)
		}
		back, err := Read(&out)
		if err != nil {
			t.Fatalf("round-trip unreadable: %v", err)
		}
		if back.Fingerprint() != e.Fingerprint() {
			t.Fatalf("read-write-read changed the experiment")
		}
	})
}
