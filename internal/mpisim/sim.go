package mpisim

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"cube/internal/counters"
	"cube/internal/trace"
)

// Config parameterises a simulated run. Zero fields take the defaults of
// WithDefaults, which approximate the paper's Myrinet-connected Pentium III
// Xeon cluster.
type Config struct {
	// Program labels the run (stored in the trace).
	Program string
	// NumRanks is the number of MPI processes; NumNodes the number of
	// SMP nodes they are placed on (block distribution).
	NumRanks int
	NumNodes int
	// Latency is the one-way message latency in seconds.
	Latency float64
	// Bandwidth is the link bandwidth in bytes per second.
	Bandwidth float64
	// SendOverhead and RecvOverhead are the CPU costs of posting a send
	// and completing a receive.
	SendOverhead float64
	RecvOverhead float64
	// RendezvousBytes is the eager/rendezvous protocol switch: messages
	// of at least this size use a synchronous rendezvous — the sender
	// blocks inside MPI_Send until the receiver has posted its receive
	// (the Late Receiver pattern). Zero keeps every message eager.
	RendezvousBytes int64
	// BarrierCost is the absolute cost of the barrier algorithm once all
	// ranks have arrived; 0 selects ceil(log2(np)) * Latency.
	BarrierCost float64
	// CollExitSkew staggers the completion of collective operations
	// across ranks (what makes Barrier-Completion non-zero).
	CollExitSkew float64
	// NoiseAmp perturbs every compute phase multiplicatively by up to
	// this fraction (unrelated system activity); 0 disables noise.
	NoiseAmp float64
	// Seed seeds the deterministic noise generators; runs with different
	// seeds model repeated executions of the same configuration.
	Seed int64
	// CounterModel synthesises hardware-counter values from work; nil
	// selects counters.DefaultModel when counters are requested.
	CounterModel *counters.Model
	// TraceCounters, when non-empty, attaches cumulative values of this
	// event set to every enter/exit record (the space-hungry monitoring
	// mode §5.2 warns about). The set must be measurable in one run.
	TraceCounters counters.EventSet
}

// WithDefaults returns cfg with zero fields replaced by defaults.
func (cfg Config) WithDefaults() Config {
	if cfg.Program == "" {
		cfg.Program = "app"
	}
	if cfg.NumRanks <= 0 {
		cfg.NumRanks = 1
	}
	if cfg.NumNodes <= 0 {
		cfg.NumNodes = 1
	}
	if cfg.Latency == 0 {
		cfg.Latency = 20e-6
	}
	if cfg.Bandwidth == 0 {
		cfg.Bandwidth = 120e6
	}
	if cfg.SendOverhead == 0 {
		cfg.SendOverhead = 3e-6
	}
	if cfg.RecvOverhead == 0 {
		cfg.RecvOverhead = 3e-6
	}
	if cfg.CollExitSkew == 0 {
		cfg.CollExitSkew = 4e-6
	}
	return cfg
}

// Run is the outcome of a simulated execution.
type Run struct {
	// Config echoes the (defaulted) configuration.
	Config Config
	// Trace is the generated event trace, sorted by time.
	Trace *trace.Trace
	// RankEnd is each rank's local clock at program end.
	RankEnd []float64
	// Elapsed is the wall-clock time of the run (max of RankEnd).
	Elapsed float64
	// FinalWork is each rank's accumulated abstract work.
	FinalWork []counters.Work
}

// DeadlockError reports that the simulated program cannot make progress.
type DeadlockError struct {
	// Blocked describes what each stuck rank is waiting for.
	Blocked []string
}

// Error implements the error interface.
func (e *DeadlockError) Error() string {
	return "mpisim: deadlock: " + strings.Join(e.Blocked, "; ")
}

type message struct {
	sendTime float64 // sender's clock when the send was posted
	arrival  float64 // receiver-side arrival time
	bytes    int64
}

// recvPost signals a posted-but-unmatched receive, which rendezvous sends
// synchronise with.
type recvPost struct {
	time  float64
	taken bool
}

type chanKey struct {
	src, dst, tag int
}

type collKey struct {
	kind collOp
	seq  int
}

type collState struct {
	enters   []float64
	arrived  int
	maxEnter float64
	bytes    int64
	root     int
}

type rankState struct {
	pc      int
	clock   float64
	work    counters.Work
	collSeq map[collOp]int
	ompSeq  int
	rng     *rand.Rand
	// posts tracks the receive this rank has posted for its currently
	// blocked recv op (keyed by pc), so rendezvous senders can match it.
	posts map[int]*recvPost
	// waiting describes what the rank is blocked on, for deadlock
	// diagnostics.
	waiting string
}

// Simulate runs the program under the configuration and returns the run.
// The simulation is fully deterministic for a given (Config, Program) pair.
func Simulate(cfg Config, prog Program) (*Run, error) {
	cfg = cfg.WithDefaults()
	if cfg.TraceCounters != nil {
		if err := cfg.TraceCounters.Validate(); err != nil {
			return nil, fmt.Errorf("mpisim: trace counter set not measurable in one run: %w", err)
		}
		if cfg.CounterModel == nil {
			cfg.CounterModel = counters.DefaultModel()
		}
	}
	ops, err := build(cfg.NumRanks, prog)
	if err != nil {
		return nil, err
	}

	tr := trace.New(cfg.Program, cfg.NumRanks)
	tr.Counters = cfg.TraceCounters.Names()
	np := cfg.NumRanks

	ranks := make([]*rankState, np)
	for r := 0; r < np; r++ {
		ranks[r] = &rankState{
			collSeq: map[collOp]int{},
			posts:   map[int]*recvPost{},
			rng:     rand.New(rand.NewSource(cfg.Seed*1000003 + int64(r)*7919 + 1)),
		}
	}
	queues := map[chanKey][]message{}
	pending := map[chanKey][]*recvPost{}
	colls := map[collKey]*collState{}

	sampleCounters := func(rs *rankState) []int64 {
		if len(cfg.TraceCounters) == 0 {
			return nil
		}
		return cfg.CounterModel.Counts(cfg.TraceCounters, rs.work)
	}
	emit := func(rs *rankState, ev trace.Event) {
		// Counters are process-wide cumulative values sampled on the
		// master thread; worker-thread records carry none.
		if (ev.Kind == trace.Enter || ev.Kind == trace.Exit) && ev.Thread == 0 {
			ev.Counters = sampleCounters(rs)
		}
		tr.Append(ev)
	}
	enter := func(r int, rs *rankState, region string, line int, at float64) int32 {
		id := tr.DefineRegion(region, moduleFor(region), line)
		emit(rs, trace.Event{Kind: trace.Enter, Time: at, Rank: int32(r), Region: id, Partner: trace.NoPartner})
		return id
	}
	exitEv := func(r int, rs *rankState, region int32, at float64) {
		emit(rs, trace.Event{Kind: trace.Exit, Time: at, Rank: int32(r), Region: region, Partner: trace.NoPartner})
	}

	noise := func(rs *rankState) float64 {
		if cfg.NoiseAmp <= 0 {
			return 1
		}
		return 1 + cfg.NoiseAmp*rs.rng.Float64()
	}
	// skew staggers collective completions deterministically per rank.
	skew := func(r int) float64 {
		return cfg.CollExitSkew * float64((r*2654435761)%97) / 97.0
	}
	log2np := math.Ceil(math.Log2(float64(np)))
	if log2np < 1 {
		log2np = 1
	}
	collCost := func(kind collOp, bytes int64) float64 {
		bb := float64(bytes) / cfg.Bandwidth
		switch kind {
		case collBarrier:
			if cfg.BarrierCost > 0 {
				return cfg.BarrierCost
			}
			return log2np * cfg.Latency
		case collAllToAll, collAllGather:
			return log2np*cfg.Latency + float64(np-1)*bb
		case collAllReduce:
			return 2 * log2np * (cfg.Latency + bb)
		case collBcast, collReduce:
			return log2np * (cfg.Latency + bb)
		}
		return log2np * cfg.Latency
	}

	// step executes the next op of rank r if possible. It returns whether
	// progress was made; a non-nil error aborts the simulation.
	step := func(r int) (bool, error) {
		rs := ranks[r]
		if rs.pc >= len(ops[r]) {
			return false, nil
		}
		o := &ops[r][rs.pc]
		switch o.kind {
		case opEnter:
			enter(r, rs, o.region, o.line, rs.clock)
		case opExit:
			id := tr.DefineRegion(o.region, moduleFor(o.region), o.line)
			exitEv(r, rs, id, rs.clock)
		case opCompute:
			d := o.seconds * noise(rs)
			w := o.work
			w.Seconds = d
			rs.work.Add(w)
			rs.clock += d
		case opSend:
			t0 := rs.clock
			k := chanKey{src: r, dst: o.partner, tag: o.tag}
			rendezvous := cfg.RendezvousBytes > 0 && o.bytes >= cfg.RendezvousBytes
			var arrival float64
			if rendezvous {
				// Synchronous protocol: the transfer cannot start before
				// the receiver has posted its receive; the sender blocks
				// inside MPI_Send until then (Late Receiver).
				lst := pending[k]
				for len(lst) > 0 && lst[0].taken {
					lst = lst[1:]
				}
				pending[k] = lst
				if len(lst) == 0 {
					rs.waiting = fmt.Sprintf("rank %d blocked in rendezvous MPI_Send(dst=%d, tag=%d)", r, o.partner, o.tag)
					return false, nil
				}
				post := lst[0]
				post.taken = true
				pending[k] = lst[1:]
				start := t0
				if post.time > start {
					start = post.time
				}
				arrival = start + cfg.Latency + float64(o.bytes)/cfg.Bandwidth
			} else {
				arrival = t0 + cfg.Latency + float64(o.bytes)/cfg.Bandwidth
			}
			id := enter(r, rs, RegionSend, o.line, t0)
			queues[k] = append(queues[k], message{sendTime: t0, arrival: arrival, bytes: o.bytes})
			sendEv := trace.Event{Kind: trace.Send, Time: t0, Rank: int32(r), Region: -1,
				Partner: int32(o.partner), Tag: int32(o.tag), Bytes: o.bytes}
			if rendezvous {
				// Root doubles as the protocol marker on message records.
				sendEv.Root = 1
			}
			emit(rs, sendEv)
			rs.work.Add(counters.Work{Seconds: cfg.SendOverhead, LocalBytes: float64(o.bytes)})
			if rendezvous {
				rs.clock = arrival
			} else {
				rs.clock = t0 + cfg.SendOverhead
			}
			exitEv(r, rs, id, rs.clock)
		case opRecv:
			k := chanKey{src: o.partner, dst: r, tag: o.tag}
			q := queues[k]
			if len(q) == 0 {
				if rs.posts[rs.pc] == nil {
					post := &recvPost{time: rs.clock}
					rs.posts[rs.pc] = post
					pending[k] = append(pending[k], post)
				}
				rs.waiting = fmt.Sprintf("rank %d blocked in MPI_Recv(src=%d, tag=%d)", r, o.partner, o.tag)
				return false, nil
			}
			msg := q[0]
			queues[k] = q[1:]
			if post := rs.posts[rs.pc]; post != nil {
				post.taken = true // consumed by an eager message
				delete(rs.posts, rs.pc)
			}
			t0 := rs.clock
			id := enter(r, rs, RegionRecv, o.line, t0)
			done := t0 + cfg.RecvOverhead
			if msg.arrival > done {
				done = msg.arrival
			}
			emit(rs, trace.Event{Kind: trace.Recv, Time: done, Rank: int32(r), Region: -1,
				Partner: int32(o.partner), Tag: int32(o.tag), Bytes: msg.bytes})
			rs.work.Add(counters.Work{Seconds: cfg.RecvOverhead, MemBytes: float64(msg.bytes)})
			rs.clock = done
			exitEv(r, rs, id, rs.clock)
		case opParallel:
			t0 := rs.clock
			seq := rs.ompSeq
			rs.ompSeq++
			regID := tr.DefineRegion(o.region, "omp", o.line)
			barID := tr.DefineRegion(OMPBarrierRegion, "omp", o.line)
			join := t0
			ends := make([]float64, len(o.durs))
			for tid, d := range o.durs {
				eff := d * noise(rs)
				ends[tid] = t0 + eff
				if ends[tid] > join {
					join = ends[tid]
				}
			}
			for tid := range o.durs {
				w := o.works[tid]
				w.Seconds = ends[tid] - t0
				rs.work.Add(w)
				th := int32(tid)
				emit(rs, trace.Event{Kind: trace.Enter, Time: t0, Rank: int32(r), Thread: th,
					Region: regID, Partner: trace.NoPartner})
				emit(rs, trace.Event{Kind: trace.Enter, Time: ends[tid], Rank: int32(r), Thread: th,
					Region: barID, Partner: trace.NoPartner})
				emit(rs, trace.Event{Kind: trace.Exit, Time: join, Rank: int32(r), Thread: th,
					Region: barID, Partner: trace.NoPartner,
					Coll: trace.CollOMPBarrier, CollSeq: int32(seq), Root: -1})
				emit(rs, trace.Event{Kind: trace.Exit, Time: join, Rank: int32(r), Thread: th,
					Region: regID, Partner: trace.NoPartner})
			}
			rs.clock = join
		case opColl:
			seq := rs.collSeq[o.coll]
			ck := collKey{kind: o.coll, seq: seq}
			cs := colls[ck]
			if cs == nil {
				cs = &collState{enters: make([]float64, np), root: o.root, bytes: o.bytes}
				for i := range cs.enters {
					cs.enters[i] = math.NaN()
				}
				colls[ck] = cs
			}
			if math.IsNaN(cs.enters[r]) {
				cs.enters[r] = rs.clock
				cs.arrived++
				if cs.enters[r] > cs.maxEnter {
					cs.maxEnter = cs.enters[r]
				}
				if o.root != cs.root || o.bytes != cs.bytes {
					return false, fmt.Errorf("mpisim: rank %d calls %s instance %d with root=%d bytes=%d, but another rank used root=%d bytes=%d",
						r, o.coll.region(), seq, o.root, o.bytes, cs.root, cs.bytes)
				}
			}
			if cs.arrived < np {
				rs.waiting = fmt.Sprintf("rank %d blocked in %s (instance %d, %d/%d arrived)",
					r, o.coll.region(), seq, cs.arrived, np)
				return false, nil
			}
			t0 := cs.enters[r]
			id := enter(r, rs, o.coll.region(), o.line, t0)
			done := cs.maxEnter + collCost(o.coll, o.bytes) + skew(r)
			rs.work.Add(counters.Work{Seconds: collCost(o.coll, o.bytes), LocalBytes: float64(o.bytes)})
			rs.clock = done
			emit(rs, trace.Event{Kind: trace.Exit, Time: done, Rank: int32(r), Region: id,
				Partner: trace.NoPartner, Bytes: o.bytes,
				Coll: collTraceKind(o.coll), CollSeq: int32(seq), Root: int32(cs.root)})
			rs.collSeq[o.coll] = seq + 1
		}
		rs.waiting = ""
		rs.pc++
		return true, nil
	}

	for {
		progress := false
		done := 0
		for r := 0; r < np; r++ {
			for {
				ok, err := step(r)
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
				progress = true
			}
			if ranks[r].pc >= len(ops[r]) {
				done++
			}
		}
		if done == np {
			break
		}
		if !progress {
			var blocked []string
			for r := 0; r < np; r++ {
				if ranks[r].pc < len(ops[r]) {
					w := ranks[r].waiting
					if w == "" {
						w = fmt.Sprintf("rank %d stuck at op %d", r, ranks[r].pc)
					}
					blocked = append(blocked, w)
				}
			}
			return nil, &DeadlockError{Blocked: blocked}
		}
	}

	tr.Sort()
	run := &Run{Config: cfg, Trace: tr, RankEnd: make([]float64, np), FinalWork: make([]counters.Work, np)}
	for r := 0; r < np; r++ {
		run.RankEnd[r] = ranks[r].clock
		run.FinalWork[r] = ranks[r].work
		if ranks[r].clock > run.Elapsed {
			run.Elapsed = ranks[r].clock
		}
	}
	return run, nil
}

func collTraceKind(c collOp) trace.CollKind {
	switch c {
	case collBarrier:
		return trace.CollBarrier
	case collAllToAll:
		return trace.CollAllToAll
	case collAllReduce:
		return trace.CollAllReduce
	case collBcast:
		return trace.CollBcast
	case collReduce:
		return trace.CollReduce
	case collAllGather:
		return trace.CollAllGather
	}
	return trace.CollNone
}

// moduleFor assigns MPI regions to a pseudo library module and user regions
// to the application module.
func moduleFor(region string) string {
	if strings.HasPrefix(region, "MPI_") {
		return "libmpi"
	}
	return "app"
}
