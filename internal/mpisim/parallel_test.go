package mpisim

import (
	"math"
	"testing"

	"cube/internal/counters"
	"cube/internal/trace"
)

func TestParallelRegionJoin(t *testing.T) {
	run, err := Simulate(noNoise(1), func(b *B) {
		b.Enter("main")
		b.Parallel("loop", 3, func(tid int) (float64, counters.Work) {
			return 0.01 * float64(tid+1), counters.Work{Flops: 1e5}
		})
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Trace.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	// Join at the slowest thread: 0.03.
	if math.Abs(run.Elapsed-0.03) > 1e-12 {
		t.Errorf("elapsed = %v, want 0.03", run.Elapsed)
	}
	// Every thread has Enter/Exit for the region and the implicit
	// barrier.
	perThread := map[int32]int{}
	var barrierExits int
	for _, ev := range run.Trace.Events {
		if ev.Kind == trace.Enter && run.Trace.RegionName(ev.Region) == OMPPrefix+"loop" {
			perThread[ev.Thread]++
		}
		if ev.Coll == trace.CollOMPBarrier {
			barrierExits++
			if math.Abs(ev.Time-0.03) > 1e-12 {
				t.Errorf("barrier exit at %v, want join 0.03", ev.Time)
			}
		}
	}
	if len(perThread) != 3 {
		t.Errorf("threads seen = %d, want 3", len(perThread))
	}
	if barrierExits != 3 {
		t.Errorf("barrier exits = %d, want 3", barrierExits)
	}
	// Work accumulated across all threads: 0.01+0.02+0.03 busy seconds.
	if math.Abs(run.FinalWork[0].Seconds-0.06) > 1e-12 {
		t.Errorf("work seconds = %v, want 0.06", run.FinalWork[0].Seconds)
	}
	if run.FinalWork[0].Flops != 3e5 {
		t.Errorf("flops = %v, want 3e5", run.FinalWork[0].Flops)
	}
}

func TestParallelValidation(t *testing.T) {
	if _, err := Simulate(noNoise(1), func(b *B) {
		b.Enter("m")
		b.Parallel("x", 0, func(int) (float64, counters.Work) { return 0, counters.Work{} })
		b.Exit()
	}); err == nil {
		t.Errorf("zero threads accepted")
	}
	if _, err := Simulate(noNoise(1), func(b *B) {
		b.Enter("m")
		b.Parallel("x", 2, func(int) (float64, counters.Work) { return -1, counters.Work{} })
		b.Exit()
	}); err == nil {
		t.Errorf("negative duration accepted")
	}
}

func TestParallelThreadsPerRank(t *testing.T) {
	run, err := Simulate(noNoise(2), func(b *B) {
		b.Enter("main")
		n := 2
		if b.Rank() == 1 {
			n = 4
		}
		b.Parallel("work", n, func(int) (float64, counters.Work) { return 0.001, counters.Work{} })
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	per := run.Trace.ThreadsPerRank()
	if per[0] != 2 || per[1] != 4 {
		t.Errorf("ThreadsPerRank = %v, want [2 4]", per)
	}
}

func TestParallelCountersMasterOnly(t *testing.T) {
	cfg := noNoise(1)
	cfg.TraceCounters = counters.EventSet{counters.FPIns}
	run, err := Simulate(cfg, func(b *B) {
		b.Enter("main")
		b.Parallel("w", 2, func(int) (float64, counters.Work) {
			return 0.001, counters.Work{Flops: 100}
		})
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range run.Trace.Events {
		if ev.Kind != trace.Enter && ev.Kind != trace.Exit {
			continue
		}
		if ev.Thread == 0 && len(ev.Counters) != 1 {
			t.Errorf("master record without counters: %+v", ev)
		}
		if ev.Thread != 0 && ev.Counters != nil {
			t.Errorf("worker record carries counters: %+v", ev)
		}
	}
}

func TestParallelSequencePerRank(t *testing.T) {
	// Two parallel regions: instances numbered per rank independently.
	run, err := Simulate(noNoise(2), func(b *B) {
		b.Enter("main")
		b.Parallel("a", 2, func(int) (float64, counters.Work) { return 0.001, counters.Work{} })
		b.Parallel("b", 2, func(int) (float64, counters.Work) { return 0.001, counters.Work{} })
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	seqs := map[int32]map[int32]bool{}
	for _, ev := range run.Trace.Events {
		if ev.Coll == trace.CollOMPBarrier {
			if seqs[ev.Rank] == nil {
				seqs[ev.Rank] = map[int32]bool{}
			}
			seqs[ev.Rank][ev.CollSeq] = true
		}
	}
	for r, s := range seqs {
		if len(s) != 2 || !s[0] || !s[1] {
			t.Errorf("rank %d instance numbering wrong: %v", r, s)
		}
	}
}
