package mpisim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"cube/internal/counters"
	"cube/internal/trace"
)

func noNoise(np int) Config {
	return Config{Program: "test", NumRanks: np, Seed: 1}
}

// findEvents returns the events of a kind for a rank, in time order.
func findEvents(tr *trace.Trace, rank int, kind trace.Kind) []trace.Event {
	var out []trace.Event
	for _, ev := range tr.Events {
		if int(ev.Rank) == rank && ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

func regionEvents(tr *trace.Trace, rank int, region string, kind trace.Kind) []trace.Event {
	var out []trace.Event
	for _, ev := range tr.Events {
		if int(ev.Rank) == rank && ev.Kind == kind && ev.Region >= 0 && tr.RegionName(ev.Region) == region {
			out = append(out, ev)
		}
	}
	return out
}

func TestBuilderValidation(t *testing.T) {
	cases := map[string]Program{
		"unbalanced": func(b *B) { b.Enter("main") },
		"exit only":  func(b *B) { b.Exit() },
		"bad dst":    func(b *B) { b.Enter("m"); b.Send(99, 0, 1); b.Exit() },
		"self send":  func(b *B) { b.Enter("m"); b.Send(b.Rank(), 0, 1); b.Exit() },
		"bad src":    func(b *B) { b.Enter("m"); b.Recv(-1, 0); b.Exit() },
		"self recv":  func(b *B) { b.Enter("m"); b.Recv(b.Rank(), 0); b.Exit() },
		"neg time":   func(b *B) { b.Enter("m"); b.Compute(-1, counters.Work{}); b.Exit() },
		"bad root":   func(b *B) { b.Enter("m"); b.Bcast(9, 8); b.Exit() },
		"bad reduce": func(b *B) { b.Enter("m"); b.Reduce(-1, 8); b.Exit() },
		"empty name": func(b *B) { b.Enter(""); b.Exit() },
	}
	for name, prog := range cases {
		if _, err := Simulate(noNoise(2), prog); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	run, err := Simulate(noNoise(1), func(b *B) {
		b.Enter("main")
		b.Compute(0.5, counters.Work{Flops: 100})
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Elapsed != 0.5 {
		t.Errorf("elapsed = %v, want 0.5", run.Elapsed)
	}
	if run.FinalWork[0].Seconds != 0.5 || run.FinalWork[0].Flops != 100 {
		t.Errorf("work = %+v", run.FinalWork[0])
	}
	if err := run.Trace.Validate(); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
}

func TestPingPongTimingLaw(t *testing.T) {
	cfg := noNoise(2)
	cfg = cfg.WithDefaults()
	const bytes = 120000 // 1ms at 120 MB/s
	run, err := Simulate(cfg, func(b *B) {
		b.Enter("main")
		if b.Rank() == 0 {
			b.Compute(0.010, counters.Work{})
			b.Send(1, 5, bytes)
		} else {
			b.Recv(0, 5)
		}
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Send is posted at t=0.010; arrival = send + latency + bytes/bw.
	sends := findEvents(run.Trace, 0, trace.Send)
	if len(sends) != 1 || sends[0].Time != 0.010 {
		t.Fatalf("send events: %+v", sends)
	}
	recvs := findEvents(run.Trace, 1, trace.Recv)
	if len(recvs) != 1 {
		t.Fatalf("recv events: %+v", recvs)
	}
	wantArrival := 0.010 + cfg.Latency + float64(bytes)/cfg.Bandwidth
	if math.Abs(recvs[0].Time-wantArrival) > 1e-12 {
		t.Errorf("recv completion = %v, want %v", recvs[0].Time, wantArrival)
	}
	// The receiver entered MPI_Recv at its local time 0 — late sender
	// waiting is visible as the enter/exit gap.
	enters := regionEvents(run.Trace, 1, RegionRecv, trace.Enter)
	if len(enters) != 1 || enters[0].Time != 0 {
		t.Errorf("recv enter: %+v", enters)
	}
	if run.RankEnd[1] != recvs[0].Time {
		t.Errorf("rank 1 end = %v", run.RankEnd[1])
	}
}

func TestRecvAfterArrivalCompletesFast(t *testing.T) {
	cfg := noNoise(2).WithDefaults()
	run, err := Simulate(cfg, func(b *B) {
		b.Enter("main")
		if b.Rank() == 0 {
			b.Send(1, 1, 8)
		} else {
			b.Compute(0.1, counters.Work{}) // message long arrived
			b.Recv(0, 1)
		}
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	recvs := findEvents(run.Trace, 1, trace.Recv)
	want := 0.1 + cfg.RecvOverhead
	if math.Abs(recvs[0].Time-want) > 1e-12 {
		t.Errorf("recv completion = %v, want %v (overhead only)", recvs[0].Time, want)
	}
}

func TestMessageOrderingFIFO(t *testing.T) {
	// Two messages on the same channel must be received in send order.
	run, err := Simulate(noNoise(2), func(b *B) {
		b.Enter("main")
		if b.Rank() == 0 {
			b.Send(1, 9, 100)
			b.Compute(0.01, counters.Work{})
			b.Send(1, 9, 200)
		} else {
			b.Recv(0, 9)
			b.Recv(0, 9)
		}
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	recvs := findEvents(run.Trace, 1, trace.Recv)
	if len(recvs) != 2 || recvs[0].Bytes != 100 || recvs[1].Bytes != 200 {
		t.Errorf("FIFO violated: %+v", recvs)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	cfg := noNoise(4).WithDefaults()
	run, err := Simulate(cfg, func(b *B) {
		b.Enter("main")
		b.Compute(0.01*float64(b.Rank()+1), counters.Work{})
		b.Barrier()
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	// All exits at maxEnter + cost + skew; maxEnter = 0.04.
	var exits []trace.Event
	for _, ev := range run.Trace.Events {
		if ev.Kind == trace.Exit && ev.Coll == trace.CollBarrier {
			exits = append(exits, ev)
		}
	}
	if len(exits) != 4 {
		t.Fatalf("barrier exits = %d", len(exits))
	}
	cost := 2 * cfg.Latency // ceil(log2(4)) = 2
	for _, ev := range exits {
		base := 0.04 + cost
		if ev.Time < base || ev.Time > base+cfg.CollExitSkew {
			t.Errorf("barrier exit %v outside [%v, %v]", ev.Time, base, base+cfg.CollExitSkew)
		}
		if ev.CollSeq != 0 {
			t.Errorf("first barrier instance must have seq 0")
		}
	}
}

func TestBarrierCostOverride(t *testing.T) {
	cfg := noNoise(4).WithDefaults()
	cfg.BarrierCost = 0.5
	run, err := Simulate(cfg, func(b *B) {
		b.Enter("main")
		b.Barrier()
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Elapsed < 0.5 {
		t.Errorf("barrier cost override ignored: elapsed %v", run.Elapsed)
	}
}

func TestCollectiveSequencing(t *testing.T) {
	// Two alltoalls: instances must be numbered 0 and 1 and exits ordered.
	run, err := Simulate(noNoise(3), func(b *B) {
		b.Enter("main")
		b.AllToAll(1000)
		b.Compute(0.001, counters.Work{})
		b.AllToAll(1000)
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	seqs := map[int32]int{}
	for _, ev := range run.Trace.Events {
		if ev.Coll == trace.CollAllToAll {
			seqs[ev.CollSeq]++
		}
	}
	if seqs[0] != 3 || seqs[1] != 3 {
		t.Errorf("instance grouping wrong: %v", seqs)
	}
}

func TestDeadlockRecvWithoutSend(t *testing.T) {
	_, err := Simulate(noNoise(2), func(b *B) {
		b.Enter("main")
		if b.Rank() == 0 {
			b.Recv(1, 3)
		}
		b.Exit()
	})
	var dl *DeadlockError
	if err == nil {
		t.Fatalf("deadlock not detected")
	}
	if !strings.Contains(err.Error(), "MPI_Recv") {
		t.Errorf("deadlock message uninformative: %v", err)
	}
	if !errorsAs(err, &dl) {
		t.Errorf("error type %T", err)
	}
}

func errorsAs(err error, target **DeadlockError) bool {
	d, ok := err.(*DeadlockError)
	if ok {
		*target = d
	}
	return ok
}

func TestDeadlockMismatchedCollectives(t *testing.T) {
	_, err := Simulate(noNoise(2), func(b *B) {
		b.Enter("main")
		if b.Rank() == 0 {
			b.Barrier()
		} else {
			b.AllToAll(10)
		}
		b.Exit()
	})
	if err == nil {
		t.Fatalf("mismatched collectives not detected")
	}
}

func TestDeadlockCrossRecv(t *testing.T) {
	// Both ranks recv before sending: classic deadlock (simulated recvs
	// block, sends are eager, but recv-first on both sides never unblocks).
	_, err := Simulate(noNoise(2), func(b *B) {
		other := 1 - b.Rank()
		b.Enter("main")
		b.Recv(other, 0)
		b.Send(other, 0, 10)
		b.Exit()
	})
	if err == nil {
		t.Fatalf("cross recv deadlock not detected")
	}
}

func TestDeterminism(t *testing.T) {
	prog := func(b *B) {
		b.Enter("main")
		b.Compute(0.01, counters.Work{Flops: 1e6})
		if b.Rank() > 0 {
			b.Send(0, 1, 512)
		} else {
			for i := 1; i < b.NP(); i++ {
				b.Recv(i, 1)
			}
		}
		b.Barrier()
		b.Exit()
	}
	cfg := Config{Program: "det", NumRanks: 4, Seed: 7, NoiseAmp: 0.1}
	a, err := Simulate(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace.Events) != len(b.Trace.Events) {
		t.Fatalf("event counts differ")
	}
	for i := range a.Trace.Events {
		if !reflect.DeepEqual(a.Trace.Events[i], b.Trace.Events[i]) {
			t.Fatalf("event %d differs between identical runs", i)
		}
	}
	if a.Elapsed != b.Elapsed {
		t.Errorf("elapsed differs: %v vs %v", a.Elapsed, b.Elapsed)
	}
	// Different seed must (with noise) give different timing.
	cfg2 := cfg
	cfg2.Seed = 8
	c, err := Simulate(cfg2, prog)
	if err != nil {
		t.Fatal(err)
	}
	if c.Elapsed == a.Elapsed {
		t.Errorf("noise did not vary with seed")
	}
}

func TestNoiseBounds(t *testing.T) {
	cfg := Config{Program: "n", NumRanks: 1, Seed: 3, NoiseAmp: 0.5}
	run, err := Simulate(cfg, func(b *B) {
		b.Enter("main")
		for i := 0; i < 100; i++ {
			b.Compute(0.001, counters.Work{})
		}
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Elapsed < 0.1 || run.Elapsed > 0.15 {
		t.Errorf("noise outside multiplicative bounds: %v", run.Elapsed)
	}
}

func TestTraceCountersAttached(t *testing.T) {
	cfg := noNoise(2)
	cfg.TraceCounters = counters.EventSet{counters.TotalCycles, counters.FPIns}
	run, err := Simulate(cfg, func(b *B) {
		b.Enter("main")
		b.Compute(0.01, counters.Work{Flops: 5e6})
		if b.Rank() == 0 {
			b.Send(1, 0, 64)
		} else {
			b.Recv(0, 0)
		}
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := run.Trace.Counters; len(got) != 2 || got[1] != "PAPI_FP_INS" {
		t.Fatalf("trace counters = %v", got)
	}
	// Every enter/exit carries monotone cumulative values.
	last := map[int32][]int64{}
	for _, ev := range run.Trace.Events {
		if ev.Kind != trace.Enter && ev.Kind != trace.Exit {
			continue
		}
		if len(ev.Counters) != 2 {
			t.Fatalf("enter/exit without counters: %+v", ev)
		}
		if prev, ok := last[ev.Rank]; ok {
			for i := range prev {
				if ev.Counters[i] < prev[i] {
					t.Fatalf("counter %d not monotone on rank %d", i, ev.Rank)
				}
			}
		}
		last[ev.Rank] = ev.Counters
	}
	// FP_INS accumulated = 5e6 per rank.
	if last[0][1] != 5e6 {
		t.Errorf("final FP_INS = %d", last[0][1])
	}
}

func TestTraceCountersConflictRejected(t *testing.T) {
	cfg := noNoise(1)
	cfg.TraceCounters = counters.EventSet{counters.FPIns, counters.L1DataMiss}
	_, err := Simulate(cfg, func(b *B) {
		b.Enter("main")
		b.Exit()
	})
	if err == nil {
		t.Errorf("conflicting trace counter set accepted")
	}
}

func TestCollectiveMismatchedArgs(t *testing.T) {
	_, err := Simulate(noNoise(2), func(b *B) {
		b.Enter("main")
		b.Bcast(b.Rank(), 8) // different roots
		b.Exit()
	})
	if err == nil {
		t.Errorf("mismatched collective roots accepted")
	}
}

func TestAllCollectivesRun(t *testing.T) {
	run, err := Simulate(noNoise(4), func(b *B) {
		b.Enter("main")
		b.Barrier()
		b.AllToAll(256)
		b.AllReduce(8)
		b.Bcast(0, 1024)
		b.Reduce(2, 64)
		b.AllGather(512)
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[trace.CollKind]int{}
	for _, ev := range run.Trace.Events {
		if ev.Coll != trace.CollNone {
			kinds[ev.Coll]++
		}
	}
	for _, k := range []trace.CollKind{trace.CollBarrier, trace.CollAllToAll, trace.CollAllReduce,
		trace.CollBcast, trace.CollReduce, trace.CollAllGather} {
		if kinds[k] != 4 {
			t.Errorf("collective %v exits = %d, want 4", k, kinds[k])
		}
	}
	if err := run.Trace.Validate(); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
}

func TestSingleRankCollectives(t *testing.T) {
	run, err := Simulate(noNoise(1), func(b *B) {
		b.Enter("main")
		b.Barrier()
		b.AllToAll(128)
		b.AllReduce(8)
		b.Bcast(0, 64)
		b.Reduce(0, 64)
		b.AllGather(64)
		b.Exit()
	})
	if err != nil {
		t.Fatalf("single-rank collectives: %v", err)
	}
	if err := run.Trace.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if run.Elapsed <= 0 {
		t.Errorf("collectives cost nothing: %v", run.Elapsed)
	}
}

func TestEmptyProgram(t *testing.T) {
	run, err := Simulate(noNoise(2), func(b *B) {
		b.Enter("main")
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Elapsed != 0 || len(run.Trace.Events) != 4 {
		t.Errorf("empty program: elapsed %v, events %d", run.Elapsed, len(run.Trace.Events))
	}
}

func TestRegionNesting(t *testing.T) {
	run, err := Simulate(noNoise(1), func(b *B) {
		b.Enter("main")
		b.Region("phase", func() {
			b.Region("inner", func() {
				b.Compute(0.001, counters.Work{})
			})
		})
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Trace.Validate(); err != nil {
		t.Fatalf("nesting broken: %v", err)
	}
	if len(regionEvents(run.Trace, 0, "inner", trace.Enter)) != 1 {
		t.Errorf("inner region missing")
	}
}

func TestAtLineNumbers(t *testing.T) {
	run, err := Simulate(noNoise(1), func(b *B) {
		b.At(42).Enter("main")
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Trace.Regions[0].Line != 42 {
		t.Errorf("line = %d, want 42", run.Trace.Regions[0].Line)
	}
}

func TestModuleAssignment(t *testing.T) {
	if moduleFor("MPI_Recv") != "libmpi" || moduleFor("solver") != "app" {
		t.Errorf("moduleFor wrong")
	}
}

func TestWithDefaults(t *testing.T) {
	cfg := Config{}.WithDefaults()
	if cfg.NumRanks != 1 || cfg.Latency == 0 || cfg.Bandwidth == 0 || cfg.Program == "" {
		t.Errorf("defaults incomplete: %+v", cfg)
	}
}
