// Package mpisim is a deterministic discrete-event simulator for SPMD
// message-passing programs. It stands in for the parallel machines the
// paper ran on (a Pentium III Xeon / Myrinet cluster and an IBM POWER4
// system): programs expressed in a small builder DSL — compute phases,
// point-to-point messages, barriers, and collective operations — are
// simulated with a latency/bandwidth timing model, per-process noise, and
// load imbalance, producing EPILOG-style event traces (optionally carrying
// hardware-counter values in every record) that the EXPERT-like analyzer
// and the CONE-like profiler consume.
package mpisim

import (
	"fmt"

	"cube/internal/counters"
	"cube/internal/trace"
)

// MPI region names used in generated traces.
const (
	RegionSend      = "MPI_Send"
	RegionRecv      = "MPI_Recv"
	RegionBarrier   = "MPI_Barrier"
	RegionAllToAll  = "MPI_Alltoall"
	RegionAllReduce = "MPI_Allreduce"
	RegionBcast     = "MPI_Bcast"
	RegionReduce    = "MPI_Reduce"
	RegionAllGather = "MPI_Allgather"
)

// OpenMP region naming (EXPERT-style constructs), shared with the trace
// package so analyzers do not depend on the simulator.
const (
	// OMPPrefix prefixes the region name of every parallel region.
	OMPPrefix = trace.OMPPrefix
	// OMPBarrierRegion is the implicit barrier joining a parallel region.
	OMPBarrierRegion = trace.OMPBarrierRegion
)

// Program builds the per-rank behaviour of an SPMD application: it is
// invoked once per rank with a builder that records that rank's operation
// sequence. Control flow may depend on b.Rank() and b.NP() but not on
// message contents (the simulator transports time, not data).
type Program func(b *B)

type opKind uint8

const (
	opEnter opKind = iota
	opExit
	opCompute
	opSend
	opRecv
	opColl
	opParallel
)

type collOp uint8

const (
	collBarrier collOp = iota
	collAllToAll
	collAllReduce
	collBcast
	collReduce
	collAllGather
)

func (c collOp) region() string {
	switch c {
	case collBarrier:
		return RegionBarrier
	case collAllToAll:
		return RegionAllToAll
	case collAllReduce:
		return RegionAllReduce
	case collBcast:
		return RegionBcast
	case collReduce:
		return RegionReduce
	case collAllGather:
		return RegionAllGather
	}
	return "MPI_Collective"
}

type op struct {
	kind    opKind
	region  string        // opEnter/opExit
	line    int           // source line attributed to the op's call site
	seconds float64       // opCompute: nominal duration
	work    counters.Work // opCompute: abstract work (Seconds ignored)
	partner int           // opSend: destination, opRecv: source
	tag     int
	bytes   int64
	coll    collOp // opColl
	root    int    // opColl (bcast/reduce)
	// opParallel: per-thread nominal durations and work.
	durs  []float64
	works []counters.Work
}

// B records one rank's operation sequence.
type B struct {
	rank int
	np   int
	ops  []op

	stack []string
	err   error
	line  int
}

// Rank returns the rank this builder describes.
func (b *B) Rank() int { return b.rank }

// NP returns the total number of ranks.
func (b *B) NP() int { return b.np }

// At sets the source line attributed to subsequently recorded operations
// (used to give call sites line numbers). It returns b for chaining.
func (b *B) At(line int) *B {
	b.line = line
	return b
}

func (b *B) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("mpisim: rank %d: "+format, append([]any{b.rank}, args...)...)
	}
}

// Enter opens a user region (a function, loop, or phase). Regions must be
// closed with Exit in LIFO order.
func (b *B) Enter(region string) {
	if region == "" {
		b.fail("Enter with empty region name")
		return
	}
	b.stack = append(b.stack, region)
	b.ops = append(b.ops, op{kind: opEnter, region: region, line: b.line})
}

// Exit closes the innermost open user region.
func (b *B) Exit() {
	if len(b.stack) == 0 {
		b.fail("Exit without matching Enter")
		return
	}
	region := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	b.ops = append(b.ops, op{kind: opExit, region: region, line: b.line})
}

// Region runs body inside an Enter/Exit pair.
func (b *B) Region(name string, body func()) {
	b.Enter(name)
	body()
	b.Exit()
}

// Compute advances the rank's clock by the given number of seconds
// (perturbed by the configured noise) while performing the given abstract
// work. The Seconds field of work is ignored; the simulator accounts the
// effective duration as busy time.
func (b *B) Compute(seconds float64, work counters.Work) {
	if seconds < 0 {
		b.fail("Compute with negative duration %g", seconds)
		return
	}
	b.ops = append(b.ops, op{kind: opCompute, seconds: seconds, work: work, line: b.line})
}

// Send transmits bytes to rank dst with the given tag (standard blocking
// send with eager completion: the sender proceeds after its send overhead).
func (b *B) Send(dst, tag int, bytes int64) {
	if dst < 0 || dst >= b.np {
		b.fail("Send to invalid rank %d (np=%d)", dst, b.np)
		return
	}
	if dst == b.rank {
		b.fail("Send to self")
		return
	}
	b.ops = append(b.ops, op{kind: opSend, partner: dst, tag: tag, bytes: bytes, line: b.line})
}

// Recv receives a message from rank src with the given tag, blocking until
// the matching message has arrived.
func (b *B) Recv(src, tag int) {
	if src < 0 || src >= b.np {
		b.fail("Recv from invalid rank %d (np=%d)", src, b.np)
		return
	}
	if src == b.rank {
		b.fail("Recv from self")
		return
	}
	b.ops = append(b.ops, op{kind: opRecv, partner: src, tag: tag, line: b.line})
}

// Parallel executes an OpenMP-style parallel region with the given number
// of threads: every thread performs the duration and work returned by body
// for its thread id, then all threads synchronise at the region's implicit
// join barrier. The generated trace records per-thread enter/exit events
// for the region and its implicit barrier, so a trace analyzer can derive
// thread-level imbalance (waiting at the join) and idle-thread time during
// serial phases. Parallel regions must not contain MPI operations
// (funnelled communication happens outside, on the master thread).
func (b *B) Parallel(name string, threads int, body func(tid int) (seconds float64, work counters.Work)) {
	if threads < 1 {
		b.fail("Parallel with %d threads", threads)
		return
	}
	o := op{kind: opParallel, region: OMPPrefix + name, line: b.line,
		durs: make([]float64, threads), works: make([]counters.Work, threads)}
	for tid := 0; tid < threads; tid++ {
		sec, w := body(tid)
		if sec < 0 {
			b.fail("Parallel thread %d has negative duration %g", tid, sec)
			return
		}
		o.durs[tid] = sec
		o.works[tid] = w
	}
	b.ops = append(b.ops, o)
}

// Barrier synchronises all ranks.
func (b *B) Barrier() {
	b.ops = append(b.ops, op{kind: opColl, coll: collBarrier, line: b.line})
}

// AllToAll performs an all-to-all exchange contributing bytes per rank pair.
func (b *B) AllToAll(bytes int64) {
	b.ops = append(b.ops, op{kind: opColl, coll: collAllToAll, bytes: bytes, line: b.line})
}

// AllReduce performs a global reduction of bytes, result on all ranks.
func (b *B) AllReduce(bytes int64) {
	b.ops = append(b.ops, op{kind: opColl, coll: collAllReduce, bytes: bytes, line: b.line})
}

// AllGather gathers bytes from every rank on every rank (an N-to-N
// operation like AllToAll; analyzers attribute its waiting to Wait at NxN).
func (b *B) AllGather(bytes int64) {
	b.ops = append(b.ops, op{kind: opColl, coll: collAllGather, bytes: bytes, line: b.line})
}

// Bcast broadcasts bytes from root.
func (b *B) Bcast(root int, bytes int64) {
	if root < 0 || root >= b.np {
		b.fail("Bcast with invalid root %d", root)
		return
	}
	b.ops = append(b.ops, op{kind: opColl, coll: collBcast, root: root, bytes: bytes, line: b.line})
}

// Reduce reduces bytes onto root.
func (b *B) Reduce(root int, bytes int64) {
	if root < 0 || root >= b.np {
		b.fail("Reduce with invalid root %d", root)
		return
	}
	b.ops = append(b.ops, op{kind: opColl, coll: collReduce, root: root, bytes: bytes, line: b.line})
}

// build runs the program for every rank and validates the recorded
// sequences.
func build(np int, prog Program) ([][]op, error) {
	all := make([][]op, np)
	for r := 0; r < np; r++ {
		b := &B{rank: r, np: np}
		prog(b)
		if b.err != nil {
			return nil, b.err
		}
		if len(b.stack) != 0 {
			return nil, fmt.Errorf("mpisim: rank %d: %d regions left open (innermost %q)",
				r, len(b.stack), b.stack[len(b.stack)-1])
		}
		all[r] = b.ops
	}
	return all, nil
}
