package report

import (
	"strings"
	"testing"

	"cube/internal/core"
	"cube/internal/display"
)

func buildReportExp(t *testing.T) *core.Experiment {
	t.Helper()
	e := core.New("report demo")
	e.Derived = true
	e.Operation = "difference"
	e.Parents = []string{"before", "after"}
	time := e.NewMetric("Time", core.Seconds, "")
	wait := time.NewChild("Wait", "")
	mainR := e.NewRegion("main", "app", 0, 0)
	recvR := e.NewRegion("MPI_Recv", "libmpi", 0, 0)
	root := e.NewCallRoot(e.NewCallSite("", 0, mainR))
	recv := root.NewChild(e.NewCallSite("app", 9, recvR))
	threads := e.SingleThreadedSystem("m", 2, 4)
	for i, th := range threads {
		e.SetSeverity(time, root, th, 2)
		e.SetSeverity(wait, recv, th, -float64(i)-1) // losses: negative severities
	}
	topo, err := core.NewCartesian("grid", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	e.SetTopology(topo)
	return e
}

func TestWriteReport(t *testing.T) {
	e := buildReportExp(t)
	out, err := WriteString(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<!DOCTYPE html>",
		"CUBE: report demo",
		"derived by <b>difference</b>",
		"Metric tree", "Call tree", "System tree",
		"Wait", "MPI_Recv", "machine m",
		"Topology [2 2]",
		"Hotspots",
		"class=\"val neg\"", // negative severities coloured
		"<details",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q", want)
		}
	}
}

func TestWriteReportSelection(t *testing.T) {
	e := buildReportExp(t)
	sel := display.Selection{
		Metric: e.FindMetricByName("Wait"), MetricCollapsed: true,
		CNode: e.FindCallNode("main/MPI_Recv"), CNodeCollapsed: true,
	}
	out, err := WriteString(e, &Options{Selection: sel, TopN: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "selected metric <b>Wait</b>") {
		t.Errorf("selection header missing")
	}
	if !strings.Contains(out, `class="sel"`) {
		t.Errorf("selected rows not highlighted")
	}
	// TopN respected: at most 2 hotspot rows (rank cells "1", "2").
	if strings.Count(out, "<tr><td>") > 2 {
		t.Errorf("hotspot table longer than TopN")
	}
}

func TestWriteReportMultiThreaded(t *testing.T) {
	e := core.New("mt")
	time := e.NewMetric("Time", core.Seconds, "")
	mainR := e.NewRegion("main", "app", 0, 0)
	root := e.NewCallRoot(e.NewCallSite("", 0, mainR))
	p := e.NewMachine("m").NewNode("n").NewProcess(0, "")
	for tid := 0; tid < 3; tid++ {
		th := p.NewThread(tid, "")
		e.SetSeverity(time, root, th, float64(tid+1))
	}
	out, err := WriteString(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "thread 2") {
		t.Errorf("thread rows missing for multi-threaded process")
	}
}

func TestWriteReportErrors(t *testing.T) {
	if _, err := WriteString(core.New("empty"), nil); err == nil {
		t.Errorf("metric-less experiment accepted")
	}
}

func TestReportEscapesHTML(t *testing.T) {
	e := buildReportExp(t)
	e.Title = `<script>alert("x")</script>`
	out, err := WriteString(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "<script>alert") {
		t.Errorf("title not escaped")
	}
}
