// Package report renders CUBE experiments as self-contained HTML documents:
// the three dimensions as nested, expandable trees (the browser's
// <details> element gives the expand/collapse interaction for free),
// severity bars and sign colouring in place of the GUI's colour scale, an
// optional topology heat map, and the hotspot ranking. Reports work for
// derived experiments exactly like for original ones.
package report

import (
	"fmt"
	"html/template"
	"io"
	"math"
	"strings"

	"cube/internal/core"
	"cube/internal/display"
)

// Options configure report generation.
type Options struct {
	// Selection chooses the metric/call-path focus (defaults like the
	// display: first metric root and first call root, collapsed).
	Selection display.Selection
	// TopN is the length of the hotspot ranking (default 10).
	TopN int
}

type node struct {
	Label    string
	Value    float64
	Percent  float64 // of the tree base, for the bar
	Negative bool
	Selected bool
	Children []*node
}

type topoCell struct {
	Label   string
	Percent float64
	Value   float64
}

type hotspotRow struct {
	Rank   int
	Metric string
	Path   string
	Value  float64
}

type model struct {
	Title      string
	Derived    bool
	Operation  string
	Parents    []string
	MetricName string
	Selected   float64
	Unit       string
	Metrics    []*node
	Calls      []*node
	System     []*node
	TopoDims   string
	TopoRows   [][]topoCell
	Hotspots   []hotspotRow
}

// Write renders the experiment as a standalone HTML document.
func Write(w io.Writer, e *core.Experiment, opts *Options) error {
	var o Options
	if opts != nil {
		o = *opts
	}
	sel := o.Selection
	if sel.Metric == nil {
		if len(e.MetricRoots()) == 0 {
			return fmt.Errorf("report: experiment has no metrics")
		}
		sel.Metric = e.MetricRoots()[0]
		sel.MetricCollapsed = true
	}
	if sel.CNode == nil && len(e.CallRoots()) > 0 {
		sel.CNode = e.CallRoots()[0]
		sel.CNodeCollapsed = true
	}
	if o.TopN <= 0 {
		o.TopN = 10
	}

	m := &model{
		Title:      e.Title,
		Derived:    e.Derived,
		Operation:  e.Operation,
		Parents:    e.Parents,
		MetricName: sel.Metric.Name,
		Selected:   display.SelectedTotal(e, sel),
		Unit:       string(sel.Metric.Unit),
	}

	// Metric trees: expanded semantics (exclusive values), bar scaled per
	// root.
	for _, root := range e.MetricRoots() {
		base := math.Abs(e.MetricInclusive(root))
		var build func(x *core.Metric) *node
		build = func(x *core.Metric) *node {
			v := display.MetricLabel(e, x, len(x.Children()) == 0)
			n := &node{Label: x.Name, Value: v, Negative: v < 0, Selected: x == sel.Metric}
			if base > 0 {
				n.Percent = 100 * math.Abs(v) / base
			}
			for _, c := range x.Children() {
				n.Children = append(n.Children, build(c))
			}
			return n
		}
		m.Metrics = append(m.Metrics, build(root))
	}

	// Call trees for the selected metric.
	callBase := math.Abs(e.MetricInclusive(sel.Metric.Root()))
	for _, root := range e.CallRoots() {
		var build func(x *core.CallNode) *node
		build = func(x *core.CallNode) *node {
			v := display.CallLabel(e, sel, x, len(x.Children()) == 0)
			n := &node{Label: x.Callee().Name, Value: v, Negative: v < 0, Selected: x == sel.CNode}
			if callBase > 0 {
				n.Percent = 100 * math.Abs(v) / callBase
			}
			for _, c := range x.Children() {
				n.Children = append(n.Children, build(c))
			}
			return n
		}
		m.Calls = append(m.Calls, build(root))
	}

	// System tree for the selection.
	for _, mach := range e.Machines() {
		mn := &node{Label: "machine " + mach.Name}
		for _, nd := range mach.Nodes() {
			nn := &node{Label: "node " + nd.Name}
			for _, p := range nd.Processes() {
				pv := 0.0
				pn := &node{Label: p.String()}
				for _, th := range p.Threads() {
					tv := display.ThreadValue(e, sel, th)
					pv += tv
					if len(p.Threads()) > 1 {
						tn := &node{Label: fmt.Sprintf("thread %d", th.ID), Value: tv, Negative: tv < 0}
						if callBase > 0 {
							tn.Percent = 100 * math.Abs(tv) / callBase
						}
						pn.Children = append(pn.Children, tn)
					}
				}
				pn.Value = pv
				pn.Negative = pv < 0
				if callBase > 0 {
					pn.Percent = 100 * math.Abs(pv) / callBase
				}
				nn.Children = append(nn.Children, pn)
				nn.Value += pv
			}
			nn.Negative = nn.Value < 0
			if callBase > 0 {
				nn.Percent = 100 * math.Abs(nn.Value) / callBase
			}
			mn.Children = append(mn.Children, nn)
			mn.Value += nn.Value
		}
		mn.Negative = mn.Value < 0
		if callBase > 0 {
			mn.Percent = 100 * math.Abs(mn.Value) / callBase
		}
		m.System = append(m.System, mn)
	}

	// Topology heat map (2D only; other arities are skipped).
	if topo := e.Topology(); topo != nil && len(topo.Dims) == 2 {
		m.TopoDims = fmt.Sprintf("%v", topo.Dims)
		perRank := map[int]float64{}
		var maxAbs float64
		for _, p := range e.Processes() {
			var v float64
			for _, th := range p.Threads() {
				v += display.ThreadValue(e, sel, th)
			}
			perRank[p.Rank] = v
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		for y := 0; y < topo.Dims[0]; y++ {
			var row []topoCell
			for x := 0; x < topo.Dims[1]; x++ {
				rank := topo.RankAt(y, x)
				cell := topoCell{Label: "·"}
				if rank >= 0 {
					v := perRank[rank]
					cell.Label = fmt.Sprintf("%d", rank)
					cell.Value = v
					if maxAbs > 0 {
						cell.Percent = 100 * math.Abs(v) / maxAbs
					}
				}
				row = append(row, cell)
			}
			m.TopoRows = append(m.TopoRows, row)
		}
	}

	for i, h := range display.Hotspots(e, sel, o.TopN) {
		m.Hotspots = append(m.Hotspots, hotspotRow{
			Rank: i + 1, Metric: h.Metric.Name, Path: h.CNode.Path(), Value: h.Value,
		})
	}

	return tmpl.Execute(w, m)
}

// WriteString renders the report to a string.
func WriteString(e *core.Experiment, opts *Options) (string, error) {
	var sb strings.Builder
	if err := Write(&sb, e, opts); err != nil {
		return "", err
	}
	return sb.String(), nil
}

var tmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>CUBE: {{.Title}}</title>
<style>
body { font: 14px/1.4 system-ui, sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.4em; }
details { margin-left: 1.2em; } summary { cursor: pointer; }
.bar { display: inline-block; height: 0.7em; background: #4a90d9; vertical-align: baseline; }
.neg .bar { background: #d9534f; }
.val { display: inline-block; min-width: 7em; text-align: right;
       font-variant-numeric: tabular-nums; margin-right: 0.5em; }
.sel { background: #fffbd6; }
.prov { color: #666; }
table.topo { border-collapse: collapse; }
table.topo td { width: 2.2em; height: 2.2em; text-align: center; border: 1px solid #ddd; }
table.hot td, table.hot th { padding: 0.2em 0.7em; text-align: left; }
</style>
</head>
<body>
<h1>CUBE: {{.Title}}</h1>
{{if .Derived}}<p class="prov">derived by <b>{{.Operation}}</b> from {{range $i, $p := .Parents}}{{if $i}}, {{end}}{{$p}}{{end}}</p>{{end}}
<p>selected metric <b>{{.MetricName}}</b> = {{printf "%.6g" .Selected}} {{.Unit}}</p>

{{define "node"}}
{{if .Children}}<details open><summary{{if .Selected}} class="sel"{{end}}>{{template "row" .}}</summary>
{{range .Children}}{{template "node" .}}{{end}}</details>
{{else}}<div style="margin-left:1.2em"{{if .Selected}} class="sel"{{end}}>{{template "row" .}}</div>{{end}}
{{end}}
{{define "row"}}<span class="val{{if .Negative}} neg{{end}}">{{printf "%.6g" .Value}}</span><span{{if .Negative}} class="neg"{{end}}><span class="bar" style="width:{{printf "%.0f" .Percent}}px"></span></span> {{.Label}}{{end}}

<h2>Metric tree</h2>
{{range .Metrics}}{{template "node" .}}{{end}}

<h2>Call tree</h2>
{{range .Calls}}{{template "node" .}}{{end}}

<h2>System tree</h2>
{{range .System}}{{template "node" .}}{{end}}

{{if .TopoRows}}
<h2>Topology {{.TopoDims}}</h2>
<table class="topo">
{{range .TopoRows}}<tr>{{range .}}<td title="{{printf "%.6g" .Value}}" style="background: rgba(74,144,217,{{printf "%.2f" .Percent}}%)">{{.Label}}</td>{{end}}</tr>
{{end}}</table>
{{end}}

{{if .Hotspots}}
<h2>Hotspots</h2>
<table class="hot"><tr><th>#</th><th>metric</th><th>call path</th><th>value</th></tr>
{{range .Hotspots}}<tr><td>{{.Rank}}</td><td>{{.Metric}}</td><td>{{.Path}}</td><td>{{printf "%.6g" .Value}}</td></tr>
{{end}}</table>
{{end}}
</body>
</html>
`))
