package cone

import (
	"math"
	"strings"
	"testing"

	"cube/internal/apps"
	"cube/internal/core"
	"cube/internal/counters"
	"cube/internal/mpisim"
	"cube/internal/trace"
)

func handTrace(withCounters bool) *trace.Trace {
	tr := trace.New("hand", 1)
	if withCounters {
		tr.Counters = []string{"PAPI_L1_DCA", "PAPI_L1_DCM"}
	}
	mainID := tr.DefineRegion("main", "app", 1)
	innerID := tr.DefineRegion("inner", "app", 10)
	cnt := func(a, b int64) []int64 {
		if !withCounters {
			return nil
		}
		return []int64{a, b}
	}
	tr.Append(trace.Event{Kind: trace.Enter, Time: 0, Rank: 0, Region: mainID, Partner: trace.NoPartner, Counters: cnt(0, 0)})
	tr.Append(trace.Event{Kind: trace.Enter, Time: 2, Rank: 0, Region: innerID, Partner: trace.NoPartner, Counters: cnt(1000, 100)})
	tr.Append(trace.Event{Kind: trace.Exit, Time: 5, Rank: 0, Region: innerID, Partner: trace.NoPartner, Counters: cnt(4000, 400)})
	tr.Append(trace.Event{Kind: trace.Exit, Time: 10, Rank: 0, Region: mainID, Partner: trace.NoPartner, Counters: cnt(5000, 450)})
	tr.Sort()
	return tr
}

func val(e *core.Experiment, metric, call string) float64 {
	m := e.FindMetricByName(metric)
	c := e.FindCallNode(call)
	if m == nil || c == nil {
		return math.NaN()
	}
	return e.MetricValue(m, c)
}

func TestProfileTimeAndVisits(t *testing.T) {
	e, err := Profile(handTrace(false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := val(e, "Time", "main"); got != 7 {
		t.Errorf("main exclusive time = %v, want 7", got)
	}
	if got := val(e, "Time", "main/inner"); got != 3 {
		t.Errorf("inner time = %v, want 3", got)
	}
	if got := val(e, "Visits", "main/inner"); got != 1 {
		t.Errorf("visits = %v", got)
	}
	if err := e.Validate(); err != nil {
		t.Errorf("profile invalid: %v", err)
	}
	if e.Title != "hand (cone)" {
		t.Errorf("default title = %q", e.Title)
	}
}

func TestProfileCounterHierarchyAndExclusiveness(t *testing.T) {
	e, err := Profile(handTrace(true), nil)
	if err != nil {
		t.Fatal(err)
	}
	acc := e.FindMetricByName("PAPI_L1_DCA")
	miss := e.FindMetricByName("PAPI_L1_DCM")
	if miss.Parent() != acc {
		t.Fatalf("miss metric not child of access metric")
	}
	// Raw counts: main total 5000 accesses / 450 misses; inner 3000/300.
	// Stored exclusively along both trees:
	//   inner: acc-excl = 3000-300 = 2700, miss 300
	//   main:  acc raw  = 5000-3000 = 2000, excl = 2000-150 = 1850, miss 150
	if got := val(e, "PAPI_L1_DCM", "main/inner"); got != 300 {
		t.Errorf("inner misses = %v, want 300", got)
	}
	if got := val(e, "PAPI_L1_DCA", "main/inner"); got != 2700 {
		t.Errorf("inner access excl (hits) = %v, want 2700", got)
	}
	if got := val(e, "PAPI_L1_DCM", "main"); got != 150 {
		t.Errorf("main misses = %v, want 150", got)
	}
	if got := val(e, "PAPI_L1_DCA", "main"); got != 1850 {
		t.Errorf("main access excl = %v, want 1850", got)
	}
	// Inclusive aggregation reproduces the raw counter values.
	if got := e.MetricInclusive(acc); got != 5000 {
		t.Errorf("inclusive accesses = %v, want 5000", got)
	}
	if got := e.MetricInclusive(miss); got != 450 {
		t.Errorf("inclusive misses = %v, want 450", got)
	}
}

func TestProfileRootWhenParentAbsent(t *testing.T) {
	tr := handTrace(true)
	tr.Counters = []string{"PAPI_L1_DCM", "PAPI_FP_INS"} // no L1_DCA, no TOT_INS
	e, err := Profile(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"PAPI_L1_DCM", "PAPI_FP_INS"} {
		m := e.FindMetricByName(name)
		if m == nil || m.Parent() != nil {
			t.Errorf("%s should be a root metric", name)
		}
	}
}

func TestProfileRejectsInvalidTrace(t *testing.T) {
	tr := trace.New("bad", 1)
	id := tr.DefineRegion("main", "app", 0)
	tr.Append(trace.Event{Kind: trace.Enter, Time: 0, Rank: 0, Region: id, Partner: trace.NoPartner})
	if _, err := Profile(tr, nil); err == nil {
		t.Errorf("unbalanced trace accepted")
	}
}

func TestCollectPlansConflictingEvents(t *testing.T) {
	scfg := apps.Sweep3DConfig{Seed: 1, Blocks: 2, Octants: 2}
	profiles, err := Collect(apps.Sweep3DSimConfig(scfg), apps.Sweep3D(scfg),
		[]counters.Event{counters.FPIns, counters.L1DataMiss}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d, want 2 (conflict split)", len(profiles))
	}
	if profiles[0].FindMetricByName("PAPI_FP_INS") == nil {
		t.Errorf("first profile lacks FP_INS")
	}
	if profiles[1].FindMetricByName("PAPI_L1_DCM") == nil {
		t.Errorf("second profile lacks L1_DCM")
	}
	for i, p := range profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %d invalid: %v", i, err)
		}
		if !strings.Contains(p.Title, "cone run") {
			t.Errorf("profile %d title = %q", i, p.Title)
		}
	}
}

func TestCollectUnknownEvent(t *testing.T) {
	scfg := apps.Sweep3DConfig{Seed: 1}
	if _, err := Collect(apps.Sweep3DSimConfig(scfg), apps.Sweep3D(scfg),
		[]counters.Event{"PAPI_NOPE"}, nil); err == nil {
		t.Errorf("unknown event accepted")
	}
}

// Integration: profile of a simulated run conserves time and counters.
func TestProfileConservation(t *testing.T) {
	cfg := mpisim.Config{Program: "p", NumRanks: 4, Seed: 3,
		TraceCounters: counters.EventSet{counters.TotalCycles, counters.FPIns}}
	run, err := mpisim.Simulate(cfg, func(b *mpisim.B) {
		b.Enter("main")
		b.Compute(0.01*float64(1+b.Rank()), counters.Work{Flops: 1e6})
		b.Barrier()
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Profile(run.Trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Inclusive Time equals summed per-rank wall time.
	var wall float64
	for _, d := range run.RankEnd {
		wall += d
	}
	total := e.MetricInclusive(e.FindMetricByName("Time"))
	if math.Abs(total-wall) > 1e-9*wall {
		t.Errorf("time not conserved: %v vs %v", total, wall)
	}
	// Inclusive FP_INS equals the per-rank final work (4 ranks x 1e6).
	fp := e.MetricInclusive(e.FindMetricByName("PAPI_FP_INS"))
	if fp != 4e6 {
		t.Errorf("FP_INS total = %v, want 4e6", fp)
	}
}
