// Package cone is a call-graph profiler in the style of CONE: it maps
// wall-clock time and hardware-counter data onto the application's full
// call graph, including line numbers. Where the real tool instruments the
// binary with DPCL probes, this implementation consumes the instrumentation
// event stream of a simulated run directly — the stream is never written to
// disk, which is exactly the space advantage over counter-carrying traces
// that motivates combining CONE profiles with trace analysis through the
// CUBE merge operator.
//
// Counter metrics are arranged in hierarchies of more general and more
// specific events (cache accesses include cache misses, instructions
// include floating-point instructions), so the CUBE display derives
// exclusive values — e.g. cache hits — automatically.
package cone

import (
	"fmt"

	"cube/internal/core"
	"cube/internal/counters"
	"cube/internal/mpisim"
	"cube/internal/trace"
)

// Options configure profile construction.
type Options struct {
	// Machine and Nodes describe the system dimension. Defaults:
	// "cluster", 1.
	Machine string
	Nodes   int
	// Title overrides the experiment title; default "<program> (cone)".
	Title string
	// Topology optionally attaches a Cartesian process topology to the
	// produced profile.
	Topology *core.Topology
}

func (o *Options) orDefault(program string) Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.Machine == "" {
		out.Machine = "cluster"
	}
	if out.Nodes <= 0 {
		out.Nodes = 1
	}
	if out.Title == "" {
		out.Title = program + " (cone)"
	}
	return out
}

// eventParent defines the specialization hierarchy among counter events:
// a child event is a subset of its parent's count.
var eventParent = map[counters.Event]counters.Event{
	counters.FPIns:      counters.TotalIns,
	counters.LoadIns:    counters.TotalIns,
	counters.StoreIns:   counters.TotalIns,
	counters.L1DataMiss: counters.L1DataAccess,
	counters.L2DataMiss: counters.L2DataAccess,
}

// Profile builds a call-path profile from the instrumentation stream of one
// run: a Time root metric (wall-clock, exclusive per call path), a Visits
// root, and one metric per hardware counter carried by the stream, arranged
// in the event specialization hierarchy. Parent counter severities are
// stored exclusively (accesses minus misses), so inclusive aggregation
// reproduces the raw counts.
func Profile(tr *trace.Trace, opts *Options) (*core.Experiment, error) {
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("cone: %w", err)
	}
	o := opts.orDefault(tr.Program)
	e := core.New(o.Title)
	if o.Topology != nil {
		e.SetTopology(o.Topology.Clone())
	}
	e.Attrs["cone.program"] = tr.Program
	e.Attrs["cone.ranks"] = fmt.Sprintf("%d", tr.NumRanks)
	e.Attrs["cone.events"] = fmt.Sprintf("%v", tr.Counters)

	timeM := e.NewMetric("Time", core.Seconds, "Wall-clock time per call path")
	visitsM := e.NewMetric("Visits", core.Occurrences, "Number of visits of a call path")

	// Counter metrics: attach each event under its most specific present
	// ancestor, creating roots for events whose parents are absent.
	present := map[counters.Event]int{}
	for i, name := range tr.Counters {
		present[counters.Event(name)] = i
	}
	cntM := make([]*core.Metric, len(tr.Counters))
	var attach func(ev counters.Event) *core.Metric
	attach = func(ev counters.Event) *core.Metric {
		i := present[ev]
		if cntM[i] != nil {
			return cntM[i]
		}
		desc := "Hardware counter " + string(ev)
		if p, ok := eventParent[ev]; ok {
			if _, inSet := present[p]; inSet {
				cntM[i] = attach(p).NewChild(string(ev), desc)
				return cntM[i]
			}
		}
		cntM[i] = e.NewMetric(string(ev), core.Occurrences, desc)
		return cntM[i]
	}
	for _, name := range tr.Counters {
		attach(counters.Event(name))
	}

	threads := e.ThreadedSystem(o.Machine, o.Nodes, tr.ThreadsPerRank())

	type frame struct {
		cn       *core.CallNode
		enter    float64
		childDur float64
		enterCnt []int64
		childCnt []int64
	}
	roots := map[int32]*core.CallNode{}
	children := map[*core.CallNode]map[int32]*core.CallNode{}
	regions := map[int32]*core.Region{}
	regionFor := func(id int32) *core.Region {
		if r, ok := regions[id]; ok {
			return r
		}
		ri := tr.Regions[id]
		r := e.NewRegion(ri.Name, ri.Module, ri.Line, 0)
		regions[id] = r
		return r
	}
	nodeFor := func(parent *core.CallNode, id int32) *core.CallNode {
		if parent == nil {
			if cn, ok := roots[id]; ok {
				return cn
			}
			r := regionFor(id)
			cn := e.NewCallRoot(e.NewCallSite(r.Module, tr.Regions[id].Line, r))
			roots[id] = cn
			return cn
		}
		kids := children[parent]
		if kids == nil {
			kids = map[int32]*core.CallNode{}
			children[parent] = kids
		}
		if cn, ok := kids[id]; ok {
			return cn
		}
		r := regionFor(id)
		cn := parent.NewChild(e.NewCallSite(parent.Callee().Module, tr.Regions[id].Line, r))
		e.Invalidate()
		kids[id] = cn
		return cn
	}

	// Each location (rank, thread) replays independently. Worker-thread
	// lanes of hybrid codes contain only parallel-region instances; their
	// first entered region becomes a call-graph root (the profiler has no
	// cross-thread context, so "!$omp parallel ..." constructs appear as
	// roots in the profile, as a sampling profiler would show them).
	for rank, lanes := range tr.PerLocation() {
		for tid, idx := range lanes {
			th := threads[rank][tid]
			var stack []frame
			for _, i := range idx {
				ev := &tr.Events[i]
				switch ev.Kind {
				case trace.Enter:
					var parent *core.CallNode
					if len(stack) > 0 {
						parent = stack[len(stack)-1].cn
					}
					cn := nodeFor(parent, ev.Region)
					f := frame{cn: cn, enter: ev.Time, enterCnt: ev.Counters}
					if len(cntM) > 0 {
						f.childCnt = make([]int64, len(cntM))
					}
					stack = append(stack, f)
					e.AddSeverity(visitsM, cn, th, 1)
				case trace.Exit:
					f := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					dur := ev.Time - f.enter
					e.AddSeverity(timeM, f.cn, th, dur-f.childDur)
					if len(stack) > 0 {
						stack[len(stack)-1].childDur += dur
					}
					if len(cntM) > 0 && len(ev.Counters) == len(cntM) && len(f.enterCnt) == len(cntM) {
						for ci := range cntM {
							total := ev.Counters[ci] - f.enterCnt[ci]
							e.AddSeverity(cntM[ci], f.cn, th, float64(total-f.childCnt[ci]))
							if len(stack) > 0 {
								stack[len(stack)-1].childCnt[ci] += total
							}
						}
					}
				}
			}
		}
	}

	// Convert counter severities from raw counts to exclusive values with
	// respect to the metric hierarchy: subtract each child's raw count
	// from its parent so that inclusive aggregation reproduces the raw
	// values (cache hits = accesses - misses).
	for i, name := range tr.Counters {
		ev := counters.Event(name)
		p, ok := eventParent[ev]
		if !ok {
			continue
		}
		pi, inSet := present[p]
		if !inSet {
			continue
		}
		for _, cn := range e.CallNodes() {
			for _, th := range e.Threads() {
				if v := e.Severity(cntM[i], cn, th); v != 0 {
					e.AddSeverity(cntM[pi], cn, th, -v)
				}
			}
		}
	}

	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("cone: produced invalid experiment: %w", err)
	}
	return e, nil
}

// Collect plans and executes the measurement runs needed to obtain the
// requested hardware events: it partitions the events into sets measurable
// in a single run (respecting the platform's conflict rules), simulates one
// instrumented run per set — each with a distinct seed, as separate real
// executions would be — and profiles each run. The resulting experiments
// are intended to be combined with the CUBE merge operator (optionally
// after applying Mean over repeated runs).
func Collect(cfg mpisim.Config, prog mpisim.Program, events []counters.Event, opts *Options) ([]*core.Experiment, error) {
	sets, err := counters.Partition(events)
	if err != nil {
		return nil, err
	}
	var out []*core.Experiment
	for i, set := range sets {
		c := cfg
		c.TraceCounters = set
		c.Seed = cfg.Seed + int64(i)*101
		run, err := mpisim.Simulate(c, prog)
		if err != nil {
			return nil, fmt.Errorf("cone: measurement run %d: %w", i, err)
		}
		o := opts.orDefault(c.Program)
		o.Title = fmt.Sprintf("%s (cone run %d: %v)", c.Program, i, set)
		exp, err := Profile(run.Trace, &o)
		if err != nil {
			return nil, err
		}
		out = append(out, exp)
	}
	return out, nil
}
