// Package counters simulates a PAPI-like hardware-counter substrate: named
// countable events, event sets, platform conflict rules that forbid certain
// combinations from being measured in the same run, and a deterministic
// model deriving counter values from abstract work performed by a simulated
// application.
//
// The conflict rules reproduce the situation §5.2 of the paper describes on
// POWER4 — floating-point instructions and level-1 data-cache misses cannot
// be counted simultaneously — which forces two measurement runs whose
// results are then combined with the CUBE merge operator.
package counters

import (
	"fmt"
	"math"
	"sort"
)

// Event names a countable hardware event (PAPI preset style).
type Event string

// The events supported by the simulated platform.
const (
	TotalCycles  Event = "PAPI_TOT_CYC" // total cycles
	TotalIns     Event = "PAPI_TOT_INS" // completed instructions
	FPIns        Event = "PAPI_FP_INS"  // floating-point instructions
	LoadIns      Event = "PAPI_LD_INS"  // load instructions
	StoreIns     Event = "PAPI_SR_INS"  // store instructions
	L1DataAccess Event = "PAPI_L1_DCA"  // L1 data-cache accesses
	L1DataMiss   Event = "PAPI_L1_DCM"  // L1 data-cache misses
	L2DataAccess Event = "PAPI_L2_DCA"  // L2 data-cache accesses
	L2DataMiss   Event = "PAPI_L2_DCM"  // L2 data-cache misses
)

// AllEvents lists every supported event in a stable order.
func AllEvents() []Event {
	return []Event{
		TotalCycles, TotalIns, FPIns, LoadIns, StoreIns,
		L1DataAccess, L1DataMiss, L2DataAccess, L2DataMiss,
	}
}

// Known reports whether e is a supported event.
func Known(e Event) bool {
	for _, k := range AllEvents() {
		if k == e {
			return true
		}
	}
	return false
}

// MaxCountersPerRun is the number of physical counter registers of the
// simulated platform; an event set may not exceed it.
const MaxCountersPerRun = 4

// conflicts lists unordered event pairs that cannot be measured in the same
// run (the POWER4-style restriction central to §5.2).
var conflicts = [][2]Event{
	{FPIns, L1DataMiss},
	{FPIns, L2DataMiss},
	{L1DataAccess, L2DataAccess},
}

// ConflictError reports an event-set combination the platform cannot
// measure in a single run.
type ConflictError struct {
	A, B Event // conflicting pair; B empty when the set is too large
	Size int   // set size when the size limit was exceeded
}

// Error implements the error interface.
func (e *ConflictError) Error() string {
	if e.B == "" {
		return fmt.Sprintf("counters: event set of size %d exceeds the %d physical counters", e.Size, MaxCountersPerRun)
	}
	return fmt.Sprintf("counters: events %s and %s cannot be counted in the same run", e.A, e.B)
}

// EventSet is a selection of events measured together during one run.
type EventSet []Event

// Validate checks that every event is known, the set fits the physical
// counters, and no conflicting pair is present.
func (s EventSet) Validate() error {
	if len(s) > MaxCountersPerRun {
		return &ConflictError{Size: len(s)}
	}
	seen := map[Event]bool{}
	for _, e := range s {
		if !Known(e) {
			return fmt.Errorf("counters: unknown event %q", e)
		}
		if seen[e] {
			return fmt.Errorf("counters: duplicate event %q in set", e)
		}
		seen[e] = true
	}
	for _, c := range conflicts {
		if seen[c[0]] && seen[c[1]] {
			return &ConflictError{A: c[0], B: c[1]}
		}
	}
	return nil
}

// Names returns the event names as strings in set order.
func (s EventSet) Names() []string {
	out := make([]string, len(s))
	for i, e := range s {
		out[i] = string(e)
	}
	return out
}

// Conflicting reports whether two events may not share a run.
func Conflicting(a, b Event) bool {
	for _, c := range conflicts {
		if (c[0] == a && c[1] == b) || (c[0] == b && c[1] == a) {
			return true
		}
	}
	return false
}

// Partition splits the requested events into a minimal-ish sequence of
// valid event sets, each measurable in one run (greedy first-fit). This is
// how a CONE-style tool plans the measurement runs whose profiles are later
// combined with the merge operator.
func Partition(events []Event) ([]EventSet, error) {
	for _, e := range events {
		if !Known(e) {
			return nil, fmt.Errorf("counters: unknown event %q", e)
		}
	}
	var sets []EventSet
outer:
	for _, e := range events {
		for i, s := range sets {
			if len(s) >= MaxCountersPerRun {
				continue
			}
			ok := true
			for _, have := range s {
				if have == e || Conflicting(have, e) {
					ok = false
					break
				}
			}
			if ok {
				sets[i] = append(s, e)
				continue outer
			}
		}
		sets = append(sets, EventSet{e})
	}
	return sets, nil
}

// Work is the abstract work performed by a piece of simulated computation;
// the counter model maps it onto event counts. All fields accumulate.
type Work struct {
	// Seconds of busy CPU time.
	Seconds float64
	// Flops is the number of floating-point operations performed.
	Flops float64
	// MemBytes is the memory traffic in bytes that misses the L1 cache
	// (streaming/copy traffic, e.g. unpacking a received message).
	MemBytes float64
	// LocalBytes is cache-friendly data traffic that mostly hits in L1.
	LocalBytes float64
}

// Add accumulates other into w.
func (w *Work) Add(other Work) {
	w.Seconds += other.Seconds
	w.Flops += other.Flops
	w.MemBytes += other.MemBytes
	w.LocalBytes += other.LocalBytes
}

// Scale returns w scaled by f.
func (w Work) Scale(f float64) Work {
	return Work{Seconds: w.Seconds * f, Flops: w.Flops * f, MemBytes: w.MemBytes * f, LocalBytes: w.LocalBytes * f}
}

// Model deterministically derives event counts from Work, emulating a
// 550 MHz in-order processor with 32-byte L1 lines and 128-byte L2 lines.
// The zero value is not useful; use DefaultModel.
type Model struct {
	// ClockHz is the core frequency.
	ClockHz float64
	// IPC is the sustained instructions per cycle for busy time.
	IPC float64
	// L1LineBytes and L2LineBytes are the cache line sizes.
	L1LineBytes float64
	L2LineBytes float64
	// L2MissFraction is the fraction of L1-missing traffic that also
	// misses in L2.
	L2MissFraction float64
	// LocalMissRate is the small L1 miss rate of cache-friendly traffic.
	LocalMissRate float64
}

// DefaultModel returns the model used throughout the repository (roughly a
// Pentium III Xeon 550 MHz, matching the paper's test platform).
func DefaultModel() *Model {
	return &Model{
		ClockHz:        550e6,
		IPC:            0.8,
		L1LineBytes:    32,
		L2LineBytes:    128,
		L2MissFraction: 0.25,
		LocalMissRate:  0.02,
	}
}

// Count returns the value of event e for the given accumulated work.
// Values are deterministic and internally consistent (misses never exceed
// accesses, FP instructions never exceed total instructions).
func (m *Model) Count(e Event, w Work) int64 {
	loads := w.LocalBytes/8 + w.MemBytes/8 // 8-byte words
	stores := loads / 2
	l1Access := loads + stores
	l1Miss := w.MemBytes/m.L1LineBytes + (w.LocalBytes/8)*m.LocalMissRate
	l2Access := l1Miss
	l2Miss := l1Miss * m.L2MissFraction * (m.L1LineBytes / m.L2LineBytes) * 4
	if l2Miss > l2Access {
		l2Miss = l2Access
	}
	cycles := w.Seconds * m.ClockHz
	totIns := cycles * m.IPC
	if minIns := w.Flops + l1Access; totIns < minIns {
		totIns = minIns
	}
	var v float64
	switch e {
	case TotalCycles:
		v = cycles
	case TotalIns:
		v = totIns
	case FPIns:
		v = w.Flops
	case LoadIns:
		v = loads
	case StoreIns:
		v = stores
	case L1DataAccess:
		v = l1Access
	case L1DataMiss:
		v = l1Miss
	case L2DataAccess:
		v = l2Access
	case L2DataMiss:
		v = l2Miss
	default:
		return 0
	}
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return int64(v)
}

// Counts evaluates a whole event set against accumulated work, returning
// values parallel to the set.
func (m *Model) Counts(set EventSet, w Work) []int64 {
	out := make([]int64, len(set))
	for i, e := range set {
		out[i] = m.Count(e, w)
	}
	return out
}

// SortedEvents returns the events of a set sorted by name (useful for
// stable display and tests).
func SortedEvents(s EventSet) []Event {
	out := append(EventSet(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
