package counters

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKnownAndAllEvents(t *testing.T) {
	for _, e := range AllEvents() {
		if !Known(e) {
			t.Errorf("AllEvents member %q not Known", e)
		}
	}
	if Known("PAPI_BOGUS") {
		t.Errorf("unknown event accepted")
	}
}

func TestEventSetValidate(t *testing.T) {
	if err := (EventSet{TotalCycles, TotalIns, L1DataAccess, L1DataMiss}).Validate(); err != nil {
		t.Errorf("legal 4-event set rejected: %v", err)
	}
	// Too large.
	big := EventSet{TotalCycles, TotalIns, LoadIns, StoreIns, L1DataAccess}
	var ce *ConflictError
	if err := big.Validate(); err == nil || !errors.As(err, &ce) || ce.Size != 5 {
		t.Errorf("oversized set: %v", err)
	}
	// The POWER4-style conflict.
	if err := (EventSet{FPIns, L1DataMiss}).Validate(); err == nil {
		t.Errorf("conflicting set accepted")
	} else if !errors.As(err, &ce) || ce.A != FPIns || ce.B != L1DataMiss {
		t.Errorf("conflict error wrong: %v", err)
	}
	// Duplicates and unknowns.
	if err := (EventSet{FPIns, FPIns}).Validate(); err == nil {
		t.Errorf("duplicate accepted")
	}
	if err := (EventSet{"PAPI_NOPE"}).Validate(); err == nil {
		t.Errorf("unknown accepted")
	}
}

func TestConflictingSymmetry(t *testing.T) {
	if !Conflicting(FPIns, L1DataMiss) || !Conflicting(L1DataMiss, FPIns) {
		t.Errorf("conflict not symmetric")
	}
	if Conflicting(TotalIns, TotalCycles) {
		t.Errorf("false conflict")
	}
}

func TestPartition(t *testing.T) {
	want := []Event{FPIns, L1DataMiss}
	sets, err := Partition(want)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 {
		t.Fatalf("conflicting events must split into 2 runs, got %d: %v", len(sets), sets)
	}
	// Every set valid, every event placed exactly once.
	placed := map[Event]int{}
	for _, s := range sets {
		if err := s.Validate(); err != nil {
			t.Errorf("planned set invalid: %v", err)
		}
		for _, e := range s {
			placed[e]++
		}
	}
	for _, e := range want {
		if placed[e] != 1 {
			t.Errorf("event %s placed %d times", e, placed[e])
		}
	}
	if _, err := Partition([]Event{"PAPI_NOPE"}); err == nil {
		t.Errorf("unknown event accepted by Partition")
	}
	// Compatible events stay in one run.
	one, err := Partition([]Event{TotalCycles, TotalIns, L1DataAccess, L1DataMiss})
	if err != nil || len(one) != 1 {
		t.Errorf("compatible set split: %v, %v", one, err)
	}
	// Duplicates in the request are placed in separate runs (a counter
	// register can count an event only once).
	dup, err := Partition([]Event{FPIns, FPIns})
	if err != nil || len(dup) != 2 {
		t.Errorf("duplicate handling: %v, %v", dup, err)
	}
}

// Property: Partition always yields valid sets covering the request.
func TestQuickPartition(t *testing.T) {
	all := AllEvents()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(len(all))
		req := make([]Event, n)
		for i := range req {
			req[i] = all[r.Intn(len(all))]
		}
		sets, err := Partition(req)
		if err != nil {
			return false
		}
		total := 0
		for _, s := range sets {
			if s.Validate() != nil {
				return false
			}
			total += len(s)
		}
		return total == len(req)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWorkAddScale(t *testing.T) {
	w := Work{Seconds: 1, Flops: 2, MemBytes: 3, LocalBytes: 4}
	w.Add(Work{Seconds: 1, Flops: 1, MemBytes: 1, LocalBytes: 1})
	if w != (Work{Seconds: 2, Flops: 3, MemBytes: 4, LocalBytes: 5}) {
		t.Errorf("Add wrong: %+v", w)
	}
	s := w.Scale(2)
	if s != (Work{Seconds: 4, Flops: 6, MemBytes: 8, LocalBytes: 10}) {
		t.Errorf("Scale wrong: %+v", s)
	}
}

func TestModelConsistency(t *testing.T) {
	m := DefaultModel()
	w := Work{Seconds: 0.5, Flops: 1e8, MemBytes: 1e7, LocalBytes: 5e7}

	if m.Count(FPIns, w) != 1e8 {
		t.Errorf("FP_INS = %d", m.Count(FPIns, w))
	}
	if miss, acc := m.Count(L1DataMiss, w), m.Count(L1DataAccess, w); miss > acc {
		t.Errorf("L1 misses %d exceed accesses %d", miss, acc)
	}
	if miss, acc := m.Count(L2DataMiss, w), m.Count(L2DataAccess, w); miss > acc {
		t.Errorf("L2 misses %d exceed accesses %d", miss, acc)
	}
	if fp, tot := m.Count(FPIns, w), m.Count(TotalIns, w); fp > tot {
		t.Errorf("FP %d exceeds total instructions %d", fp, tot)
	}
	if m.Count(TotalCycles, w) != int64(0.5*m.ClockHz) {
		t.Errorf("cycles wrong")
	}
	if m.Count("PAPI_BOGUS", w) != 0 {
		t.Errorf("unknown event should count 0")
	}
	// Counts evaluates a whole set in order.
	set := EventSet{TotalCycles, FPIns}
	vals := m.Counts(set, w)
	if len(vals) != 2 || vals[1] != 1e8 {
		t.Errorf("Counts wrong: %v", vals)
	}
}

// Property: counts are non-negative and monotone in work.
func TestQuickModelMonotone(t *testing.T) {
	m := DefaultModel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := Work{Seconds: r.Float64(), Flops: r.Float64() * 1e9, MemBytes: r.Float64() * 1e8, LocalBytes: r.Float64() * 1e8}
		w2 := w
		w2.Add(w) // double
		for _, e := range AllEvents() {
			a, b := m.Count(e, w), m.Count(e, w2)
			if a < 0 || b < a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortedEvents(t *testing.T) {
	s := EventSet{TotalIns, FPIns, L1DataMiss}
	sorted := SortedEvents(s)
	if sorted[0] != FPIns || sorted[1] != L1DataMiss || sorted[2] != TotalIns {
		t.Errorf("SortedEvents = %v", sorted)
	}
	// Input untouched.
	if s[0] != TotalIns {
		t.Errorf("SortedEvents mutated its input")
	}
}

func TestNamesAndErrors(t *testing.T) {
	s := EventSet{FPIns, L1DataMiss}
	names := s.Names()
	if len(names) != 2 || names[0] != "PAPI_FP_INS" {
		t.Errorf("Names = %v", names)
	}
	ce := &ConflictError{A: FPIns, B: L1DataMiss}
	if ce.Error() == "" {
		t.Errorf("empty conflict message")
	}
	sz := &ConflictError{Size: 9}
	if sz.Error() == "" {
		t.Errorf("empty size message")
	}
}
