// Package store is a disk-backed content-addressed experiment store:
// blobs (CUBE XML documents) are named by the SHA-256 of their bytes,
// written crash-safely, verified against their digest on every read, and
// bounded by an LRU byte budget. It is the state layer under the server's
// /experiments routes and digest-referenced operands — operands cross the
// wire once and are referenced by digest afterwards.
//
// Robustness properties, in order of importance:
//
//   - Crash safety. A blob is committed by: temp file in the blob
//     directory → write → fsync → atomic rename to its digest name →
//     fsync of the directory. A crash at any point leaves either the
//     committed blob or no blob — never a half-written file under a
//     committed name.
//   - Corruption quarantine. Every read re-hashes the bytes; a mismatch
//     (bit rot, torn write that slipped through, operator error) moves
//     the file into quarantine/ — never deleted, never served — and the
//     read reports not-found. The startup recovery scan applies the same
//     rule to every file it finds, including leftover temp files.
//   - Degraded read-only mode. Sustained write failures (a full or dying
//     disk) or an unsatisfiable byte budget flip the store to read-only:
//     Put fails fast with ErrDegraded while Get/Stat keep serving, and
//     periodic write probes re-arm the store when the fault clears.
//
// All filesystem access goes through the FS seam (fs.go) so every one of
// those paths is deterministically testable with FaultFS (faultfs.go).
package store

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"path/filepath"
	"sync"
	"time"

	"cube/internal/obs"
)

// Sentinel errors returned by Put/Get. They are wrapped with context;
// test with errors.Is.
var (
	// ErrNotFound: the digest is not in the store (including blobs that
	// failed verification and were quarantined).
	ErrNotFound = errors.New("store: experiment not found")
	// ErrDegraded: the store is in read-only mode; retry later.
	ErrDegraded = errors.New("store: degraded (read-only) mode")
	// ErrTooLarge: the blob alone exceeds the whole byte budget.
	ErrTooLarge = errors.New("store: blob exceeds the store budget")
	// ErrDigestMismatch: the caller-supplied digest does not match the
	// bytes (a Put integrity violation — the upload is rejected).
	ErrDigestMismatch = errors.New("store: content does not match digest")
)

// Digest is a SHA-256 content address.
type Digest [sha256.Size]byte

// DigestOf returns the content address of data.
func DigestOf(data []byte) Digest { return sha256.Sum256(data) }

// String renders the digest as lowercase hex (the on-disk blob name and
// the wire format in /experiments/{digest} and digest: operand refs).
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// ParseDigest parses a 64-char hex digest.
func ParseDigest(s string) (Digest, bool) {
	var d Digest
	if len(s) != hex.EncodedLen(sha256.Size) {
		return d, false
	}
	if _, err := hex.Decode(d[:], []byte(s)); err != nil {
		return d, false
	}
	return d, true
}

// Options configures Open. The zero value is usable: OS filesystem,
// unlimited budget, no logging or metrics, default failure thresholds.
type Options struct {
	// FS is the filesystem seam; nil means the real OS filesystem.
	FS FS
	// Budget bounds the total committed blob bytes; least-recently-used
	// unpinned blobs are evicted to stay under it. 0 means unlimited.
	Budget int64
	// Logger receives recovery-scan, quarantine, and mode-transition
	// reports. nil disables logging.
	Logger *slog.Logger
	// Metrics receives the store's counters and gauges (see the README
	// metric catalog). nil disables them.
	Metrics *obs.Registry
	// FailureThreshold is how many consecutive Put write failures flip
	// the store into degraded mode (default 3; a budget breach degrades
	// immediately regardless).
	FailureThreshold int
	// ProbeInterval is how often a degraded store lets a Put through as
	// a write probe to test whether the fault has cleared (default 5s).
	ProbeInterval time.Duration
	// Events receives kind "store" wide events for lifecycle transitions:
	// evictions, quarantines, degraded-mode enter/exit, and the recovery
	// scan. nil falls back to the process-wide sink (obs.SetEventSink) at
	// each transition, so a store opened before the server's sink exists
	// still reports everything after installation — except recovery,
	// which fires during Open and needs an explicit sink to be seen.
	Events *obs.EventSink

	// now overrides the clock in tests.
	now func() time.Time
}

// RecoveryStats summarizes what the startup recovery scan found.
type RecoveryStats struct {
	Intact      int   // blobs that verified and were re-indexed
	IntactBytes int64 // their total size
	Quarantined int   // corrupt blobs, leftover temp files, foreign files
	Evicted     int   // intact blobs evicted to fit the budget
}

// Store is a content-addressed blob store rooted at one directory. It is
// safe for concurrent use.
type Store struct {
	dir       string // root; blobs live in dir/blobs, casualties in dir/quarantine
	blobDir   string
	quarDir   string
	fs        FS
	budget    int64
	logger    *slog.Logger
	reg       *obs.Registry
	threshold int
	probe     time.Duration
	events    *obs.EventSink
	now       func() time.Time

	// Recovery reports what Open's scan found; read-only afterwards.
	Recovery RecoveryStats

	mu            sync.Mutex
	entries       map[Digest]*entry
	lru           *list.List // of *entry; front = most recently used
	bytes         int64      // committed blob bytes
	reserved      int64      // bytes of in-flight Puts, held against the budget
	seq           int64      // unique suffix for temp and quarantine names
	writeFailures int        // consecutive Put write failures
	degraded      bool
	degradedWhy   string
	lastProbe     time.Time

	// Lifetime operation counters and the bounded quarantine log, for
	// Inventory (the /debug/store introspection endpoint).
	puts, gets, getMisses, evictions int64
	quarantines                      []QuarantineRecord
}

// QuarantineRecord is one quarantined file, kept (bounded) for
// introspection; the file itself sits in quarantine/ as evidence.
type QuarantineRecord struct {
	Name   string    `json:"name"`   // blob-directory name the file had
	Reason string    `json:"reason"` // why it was quarantined
	Time   time.Time `json:"time"`
}

// maxQuarantineRecords bounds the in-memory quarantine log; the ring
// keeps the most recent records (the directory holds the full history).
const maxQuarantineRecords = 64

type entry struct {
	d    Digest
	size int64
	pins int // >0 blocks eviction: the blob is in use by a request
	el   *list.Element
}

// Open opens (creating if needed) the store rooted at dir and runs the
// recovery scan: every file under dir/blobs is re-hashed; intact blobs
// are re-indexed, and corrupt blobs, partial temp files, and foreign
// files are quarantined. Open fails only if the directories cannot be
// created or listed — individual bad blobs never prevent startup.
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{
		dir:       dir,
		blobDir:   filepath.Join(dir, "blobs"),
		quarDir:   filepath.Join(dir, "quarantine"),
		fs:        opts.FS,
		budget:    opts.Budget,
		logger:    opts.Logger,
		reg:       opts.Metrics,
		threshold: opts.FailureThreshold,
		probe:     opts.ProbeInterval,
		events:    opts.Events,
		now:       opts.now,
		entries:   map[Digest]*entry{},
		lru:       list.New(),
	}
	if s.fs == nil {
		s.fs = OSFS{}
	}
	if s.threshold <= 0 {
		s.threshold = 3
	}
	if s.probe <= 0 {
		s.probe = 5 * time.Second
	}
	if s.now == nil {
		s.now = time.Now
	}
	for _, d := range []string{s.blobDir, s.quarDir} {
		if err := s.fs.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", d, err)
		}
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover re-indexes dir/blobs: verify every file against its name,
// quarantine everything that does not hold, then evict down to the
// budget. Runs before the store is shared, so no locking.
func (s *Store) recover() error {
	ents, err := s.fs.ReadDir(s.blobDir)
	if err != nil {
		return fmt.Errorf("store: scanning %s: %w", s.blobDir, err)
	}
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		d, ok := ParseDigest(name)
		if !ok {
			// Leftover temp file (crash mid-Put) or a foreign file:
			// either way a partial write we must not trust.
			s.quarantineLocked(name, "not a committed blob")
			s.Recovery.Quarantined++
			continue
		}
		data, rerr := s.readFile(filepath.Join(s.blobDir, name))
		if rerr != nil || DigestOf(data) != d {
			why := "digest mismatch"
			if rerr != nil {
				why = rerr.Error()
			}
			s.quarantineLocked(name, why)
			s.Recovery.Quarantined++
			continue
		}
		s.insertLocked(d, int64(len(data)))
		s.Recovery.Intact++
		s.Recovery.IntactBytes += int64(len(data))
	}
	// The surviving set may exceed the budget (it may have been lowered
	// since the blobs were written); evict in directory order — no access
	// history survives a restart.
	for s.budget > 0 && s.bytes > s.budget {
		if !s.evictOneLocked(nil) {
			break
		}
		s.Recovery.Evicted++
	}
	s.count("cube_store_recovered_blobs_total", int64(s.Recovery.Intact))
	s.publishGauges()
	s.emitLifecycle("recovery", "", fmt.Sprintf(
		"%d intact (%d bytes), %d quarantined, %d evicted",
		s.Recovery.Intact, s.Recovery.IntactBytes, s.Recovery.Quarantined, s.Recovery.Evicted))
	if s.logger != nil {
		s.logger.Info("experiment store recovered",
			slog.String("dir", s.dir),
			slog.Int("intact", s.Recovery.Intact),
			slog.Int64("bytes", s.Recovery.IntactBytes),
			slog.Int("quarantined", s.Recovery.Quarantined),
			slog.Int("evicted", s.Recovery.Evicted))
	}
	return nil
}

func (s *Store) count(name string, n int64) {
	if s.reg != nil {
		s.reg.Counter(name).Add(n)
	}
}

func (s *Store) inc(name string) { s.count(name, 1) }

// publishGauges pushes the size gauges; callers hold s.mu (or own the
// store exclusively, during recovery).
func (s *Store) publishGauges() {
	if s.reg == nil {
		return
	}
	s.reg.Gauge("cube_store_blobs").Set(int64(len(s.entries)))
	s.reg.Gauge("cube_store_bytes").Set(s.bytes)
}

// emitLifecycle reports one store lifecycle transition as a kind "store"
// wide event: to the explicit sink when Open was given one, else to the
// process-wide sink (one atomic load; a no-op when neither exists).
func (s *Store) emitLifecycle(event, digest, detail string) {
	sink := s.events
	if sink == nil {
		sink = obs.ActiveEventSink()
	}
	ev := sink.NewEvent("store", "")
	ev.SetStoreLifecycle(event, digest, detail)
	ev.Emit()
}

func (s *Store) blobPath(d Digest) string { return filepath.Join(s.blobDir, d.String()) }

// readFile reads one file through the FS seam.
func (s *Store) readFile(path string) ([]byte, error) {
	f, err := s.fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// quarantineLocked moves one blob-directory file into quarantine/ under a
// unique name. The file is never deleted — it is evidence — and never
// served again. Callers must already have dropped it from the index.
func (s *Store) quarantineLocked(name, why string) {
	s.seq++
	dst := filepath.Join(s.quarDir, fmt.Sprintf("%s.%d.%d", name, s.now().UnixNano(), s.seq))
	err := s.fs.Rename(filepath.Join(s.blobDir, name), dst)
	s.inc("cube_store_quarantined_total")
	s.quarantines = append(s.quarantines, QuarantineRecord{Name: name, Reason: why, Time: s.now()})
	if len(s.quarantines) > maxQuarantineRecords {
		s.quarantines = s.quarantines[len(s.quarantines)-maxQuarantineRecords:]
	}
	s.emitLifecycle("quarantine", name, why)
	if s.logger != nil {
		s.logger.Error("experiment store quarantined a blob",
			slog.String("blob", name),
			slog.String("reason", why),
			slog.String("quarantine", dst),
			slog.Any("rename_err", err))
	}
}

// insertLocked adds a committed blob to the index (idempotent).
func (s *Store) insertLocked(d Digest, size int64) *entry {
	if e, ok := s.entries[d]; ok {
		s.lru.MoveToFront(e.el)
		return e
	}
	e := &entry{d: d, size: size}
	e.el = s.lru.PushFront(e)
	s.entries[d] = e
	s.bytes += size
	s.publishGauges()
	return e
}

// dropLocked removes an entry from the index (the file is handled by the
// caller: evicted files are removed, corrupt ones quarantined).
func (s *Store) dropLocked(e *entry) {
	s.lru.Remove(e.el)
	delete(s.entries, e.d)
	s.bytes -= e.size
	s.publishGauges()
}

// evictOneLocked drops the least-recently-used unpinned blob and removes
// its file, tracing the eviction as a "store.evict" child of sp (the Put
// that caused the pressure) when traced. Reports false when nothing is
// evictable (all pinned/empty).
func (s *Store) evictOneLocked(sp *obs.Span) bool {
	for el := s.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if e.pins > 0 {
			continue
		}
		esp := sp.StartChild("store.evict")
		s.dropLocked(e)
		s.inc("cube_store_evictions_total")
		s.evictions++
		if err := s.fs.Remove(s.blobPath(e.d)); err != nil && s.logger != nil {
			// The entry is already unindexed, so the blob is not served
			// either way; the next recovery scan re-adopts the file.
			s.logger.Error("experiment store failed to remove evicted blob",
				slog.String("digest", e.d.String()), slog.Any("err", err))
		}
		s.emitLifecycle("evict", e.d.String(), fmt.Sprintf("%d bytes under budget pressure", e.size))
		if esp != nil {
			esp.SetAttr("digest", e.d.String())
			esp.SetAttr("bytes", e.size)
			esp.End()
		}
		return true
	}
	return false
}

// setDegradedLocked flips the store's mode, logging and counting the
// transition exactly once per flip.
func (s *Store) setDegradedLocked(degraded bool, why string) {
	if s.degraded == degraded {
		return
	}
	s.degraded, s.degradedWhy = degraded, why
	mode := "ok"
	event := "degraded_exit"
	if degraded {
		mode = "degraded"
		event = "degraded_enter"
	}
	s.emitLifecycle(event, "", why)
	if s.reg != nil {
		v := int64(0)
		if degraded {
			v = 1
		}
		s.reg.Gauge("cube_store_degraded").Set(v)
		s.reg.Counter("cube_store_mode_transitions_total", obs.L("to", mode)).Inc()
	}
	if s.logger != nil {
		s.logger.Warn("experiment store mode transition",
			slog.String("to", mode), slog.String("reason", why))
	}
}

// Degraded reports whether the store is in read-only mode and why.
func (s *Store) Degraded() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded, s.degradedWhy
}

// Len and Bytes report the committed index size.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stat reports whether d is committed and its size, without touching the
// LRU order or the disk.
func (s *Store) Stat(d Digest) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[d]; ok {
		return e.size, true
	}
	return 0, false
}

// Pin marks d as in use by an in-flight request: a pinned blob is never
// evicted, whatever the budget pressure. Reports false if d is absent.
// Every successful Pin must be paired with an Unpin.
func (s *Store) Pin(d Digest) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[d]
	if !ok {
		return false
	}
	e.pins++
	return true
}

// Unpin releases one Pin of d.
func (s *Store) Unpin(d Digest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[d]; ok && e.pins > 0 {
		e.pins--
	}
}

// Put commits data under its content address. It reports the digest and
// whether the blob is new (false: it was already committed — Put is
// idempotent and the existing blob is simply touched). want, if non-nil,
// is the digest the caller believes the bytes have; a mismatch is
// rejected with ErrDigestMismatch before anything touches the disk.
//
// Failure modes: ErrDegraded (read-only mode; retry later), ErrTooLarge
// (blob alone exceeds the budget), or the underlying write error — which
// counts toward the sustained-failure threshold that flips the store into
// degraded mode.
func (s *Store) Put(data []byte, want *Digest) (Digest, bool, error) {
	return s.PutContext(context.Background(), data, want)
}

// PutContext is Put carrying a context for observability: the commit runs
// under a "store.put" span (child of the span in ctx) annotated with the
// blob size and the digest-verification time, evictions it forces appear
// as "store.evict" children, and the wide event in ctx (if any) is
// credited with the write.
func (s *Store) PutContext(ctx context.Context, data []byte, want *Digest) (Digest, bool, error) {
	sp, _ := obs.StartSpanContext(ctx, "store.put")
	vstart := time.Now()
	d := DigestOf(data)
	if sp != nil {
		sp.SetAttr("bytes", int64(len(data)))
		sp.SetAttr("verify_seconds", time.Since(vstart).Seconds())
	}
	dig, created, err := s.put(ctx, sp, d, data, want)
	if sp != nil {
		sp.SetAttr("digest", dig.String())
		sp.SetAttr("created", created)
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	if err == nil {
		obs.EventFromContext(ctx).AddStorePut(int64(len(data)))
	}
	return dig, created, err
}

func (s *Store) put(ctx context.Context, sp *obs.Span, d Digest, data []byte, want *Digest) (Digest, bool, error) {
	_ = ctx
	if want != nil && *want != d {
		return d, false, fmt.Errorf("%w: bytes hash to %s, caller claimed %s", ErrDigestMismatch, d, want)
	}
	size := int64(len(data))

	s.mu.Lock()
	if e, ok := s.entries[d]; ok {
		s.lru.MoveToFront(e.el)
		s.mu.Unlock()
		return d, false, nil
	}
	if s.budget > 0 && size > s.budget {
		s.mu.Unlock()
		s.inc("cube_store_put_errors_total")
		return d, false, fmt.Errorf("%w: %d bytes against a %d byte budget", ErrTooLarge, size, s.budget)
	}
	if s.degraded {
		// Probe at most once per interval: the Put below doubles as the
		// write probe, and success re-arms the store.
		if s.now().Sub(s.lastProbe) < s.probe {
			why := s.degradedWhy
			s.mu.Unlock()
			return d, false, fmt.Errorf("%w: %s", ErrDegraded, why)
		}
		s.lastProbe = s.now()
	}
	// Reserve the bytes against the budget before writing so concurrent
	// Puts cannot collectively overshoot it.
	for s.budget > 0 && s.bytes+s.reserved+size > s.budget {
		if !s.evictOneLocked(sp) {
			s.setDegradedLocked(true, fmt.Sprintf(
				"budget breached: %d committed + %d in-flight + %d new bytes exceed %d and every blob is pinned",
				s.bytes, s.reserved, size, s.budget))
			s.lastProbe = s.now()
			s.mu.Unlock()
			s.inc("cube_store_put_errors_total")
			return d, false, fmt.Errorf("%w: budget breached with all blobs pinned", ErrDegraded)
		}
	}
	s.reserved += size
	s.seq++
	tmp := filepath.Join(s.blobDir, fmt.Sprintf(".tmp-%s-%d", d, s.seq))
	s.mu.Unlock()

	err := s.writeBlob(tmp, s.blobPath(d), data)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.reserved -= size
	if err != nil {
		s.inc("cube_store_put_errors_total")
		s.writeFailures++
		if s.writeFailures >= s.threshold {
			s.setDegradedLocked(true, fmt.Sprintf("%d consecutive write failures, last: %v", s.writeFailures, err))
			s.lastProbe = s.now()
		} else if s.degraded {
			// A failed probe: stay degraded, refresh the reason.
			s.degradedWhy = fmt.Sprintf("write probe failed: %v", err)
		}
		return d, false, fmt.Errorf("store: writing blob %s: %w", d, err)
	}
	s.writeFailures = 0
	s.setDegradedLocked(false, "")
	s.insertLocked(d, size)
	s.puts++
	s.inc("cube_store_put_total")
	return d, true, nil
}

// writeBlob runs the crash-safety protocol: temp file in the blob
// directory → write → fsync → close → atomic rename to the digest name →
// fsync of the directory. Any failure leaves at worst a temp file, which
// the next recovery scan quarantines; the committed name only ever
// appears with fully durable bytes behind it.
func (s *Store) writeBlob(tmp, final string, data []byte) error {
	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("create temp: %w", err)
	}
	cleanup := func() { s.fs.Remove(tmp) } // best effort; recovery catches leftovers
	if _, err := f.Write(data); err != nil {
		f.Close()
		cleanup()
		return fmt.Errorf("write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		cleanup()
		return fmt.Errorf("fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		cleanup()
		return fmt.Errorf("close: %w", err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		cleanup()
		return fmt.Errorf("rename: %w", err)
	}
	if err := s.fs.SyncDir(s.blobDir); err != nil {
		// The rename happened but its durability is unknown; report the
		// failure (the caller must not assume the blob survives a crash).
		// The file itself is intact, so if it does survive, the recovery
		// scan re-indexes it — both outcomes are safe.
		return fmt.Errorf("fsync dir: %w", err)
	}
	return nil
}

// Get returns the committed bytes of d. Every read is verified: the bytes
// are re-hashed, and on a mismatch the blob is quarantined and the read
// reports ErrNotFound — corrupt bytes are never served.
func (s *Store) Get(d Digest) ([]byte, error) {
	return s.GetContext(context.Background(), d)
}

// GetContext is Get carrying a context for observability: the read runs
// under a "store.get" span (child of the span in ctx) annotated with the
// blob size and the verification time, and the wide event in ctx (if
// any) is credited with the read.
func (s *Store) GetContext(ctx context.Context, d Digest) ([]byte, error) {
	sp, _ := obs.StartSpanContext(ctx, "store.get")
	data, verify, err := s.get(d)
	if sp != nil {
		sp.SetAttr("digest", d.String())
		sp.SetAttr("bytes", int64(len(data)))
		sp.SetAttr("verify_seconds", verify.Seconds())
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	if err == nil {
		obs.EventFromContext(ctx).AddStoreGet(int64(len(data)))
	}
	return data, err
}

func (s *Store) get(d Digest) ([]byte, time.Duration, error) {
	s.mu.Lock()
	e, ok := s.entries[d]
	if !ok {
		s.getMisses++
		s.mu.Unlock()
		s.inc("cube_store_get_misses_total")
		return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, d)
	}
	s.lru.MoveToFront(e.el)
	e.pins++ // transient pin: the file must not be evicted mid-read
	s.mu.Unlock()

	data, err := s.readFile(s.blobPath(d))
	vstart := time.Now()
	verified := err == nil && DigestOf(data) == d
	verify := time.Since(vstart)

	s.mu.Lock()
	defer s.mu.Unlock()
	e.pins--
	if !verified {
		// Corrupt or unreadable under a committed name: quarantine and
		// fall through to not-found. Re-check the index first — a
		// concurrent Get may have already quarantined it.
		if _, still := s.entries[d]; still {
			s.dropLocked(e)
			why := "digest mismatch on read"
			if err != nil {
				why = err.Error()
			}
			s.quarantineLocked(d.String(), why)
		}
		s.getMisses++
		s.inc("cube_store_get_misses_total")
		return nil, verify, fmt.Errorf("%w: %s (failed verification)", ErrNotFound, d)
	}
	s.gets++
	s.inc("cube_store_get_hits_total")
	return data, verify, nil
}

// Inventory is the store's introspection snapshot, served by the
// server's /debug/store endpoint.
type Inventory struct {
	Blobs       int     `json:"blobs"`
	Bytes       int64   `json:"bytes"`
	Budget      int64   `json:"budget"`   // 0 = unlimited
	Reserved    int64   `json:"reserved"` // in-flight Put bytes held against the budget
	Pressure    float64 `json:"pressure"` // (bytes+reserved)/budget; 0 when unlimited
	PinnedBlobs int     `json:"pinned_blobs"`
	Pins        int     `json:"pins"` // total pin count across blobs

	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degraded_reason,omitempty"`

	Puts      int64 `json:"puts"`
	Gets      int64 `json:"gets"`
	GetMisses int64 `json:"get_misses"`
	Evictions int64 `json:"evictions"`

	Quarantined []QuarantineRecord `json:"quarantined"` // most recent first
	Recovery    RecoveryStats      `json:"recovery"`
}

// Inventory reports the store's current state: index size and budget
// pressure, pin and degraded status, lifetime operation counts, the
// bounded quarantine log (most recent first), and what the startup
// recovery scan found.
func (s *Store) Inventory() Inventory {
	s.mu.Lock()
	defer s.mu.Unlock()
	inv := Inventory{
		Blobs:          len(s.entries),
		Bytes:          s.bytes,
		Budget:         s.budget,
		Reserved:       s.reserved,
		Degraded:       s.degraded,
		DegradedReason: s.degradedWhy,
		Puts:           s.puts,
		Gets:           s.gets,
		GetMisses:      s.getMisses,
		Evictions:      s.evictions,
		Recovery:       s.Recovery,
	}
	if s.budget > 0 {
		inv.Pressure = float64(s.bytes+s.reserved) / float64(s.budget)
	}
	for _, e := range s.entries {
		if e.pins > 0 {
			inv.PinnedBlobs++
			inv.Pins += e.pins
		}
	}
	inv.Quarantined = make([]QuarantineRecord, len(s.quarantines))
	for i, q := range s.quarantines {
		inv.Quarantined[len(s.quarantines)-1-i] = q
	}
	return inv
}
