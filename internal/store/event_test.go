package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"cube/internal/obs"
)

// lifecycleEvents returns the kind "store" events of the given type.
func lifecycleEvents(sink *obs.EventSink, event string) []*obs.EventFields {
	var out []*obs.EventFields
	for _, f := range sink.Events() {
		if f.Kind == "store" && f.StoreEvent == event {
			out = append(out, f)
		}
	}
	return out
}

func TestStoreLifecycleEvents(t *testing.T) {
	sink := obs.NewEventSink(64)
	dir := t.TempDir()
	// Budget admits two 600-byte blobs; the third evicts.
	s := openTest(t, dir, Options{Budget: 1500, Events: sink})

	if got := lifecycleEvents(sink, "recovery"); len(got) != 1 {
		t.Fatalf("recovery events = %d, want 1", len(got))
	}

	a := blob("a", 600)
	b := blob("b", 600)
	c := blob("c", 600)
	if _, _, err := s.Put(a, nil); err != nil {
		t.Fatal(err)
	}
	da := DigestOf(a)
	if _, _, err := s.Put(b, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put(c, nil); err != nil {
		t.Fatal(err)
	}
	evs := lifecycleEvents(sink, "evict")
	if len(evs) != 1 {
		t.Fatalf("evict events = %d, want 1", len(evs))
	}
	if evs[0].Digest != da.String() {
		t.Errorf("evicted digest = %s, want %s (LRU)", evs[0].Digest, da)
	}
	if err := obs.ValidateEvent(evs[0]); err != nil {
		t.Errorf("evict event invalid: %v", err)
	}
}

func TestStoreQuarantineAndDegradedEvents(t *testing.T) {
	sink := obs.NewEventSink(64)
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	clock := time.Unix(1000, 0)
	s := openTest(t, dir, Options{
		FS:               ffs,
		Events:           sink,
		FailureThreshold: 1,
		ProbeInterval:    10 * time.Second,
		now:              func() time.Time { return clock },
	})

	// Corrupt a committed blob on disk: the verified read quarantines it.
	data := blob("x", 400)
	d, _, err := s.Put(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "blobs", d.String()), []byte("corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(d); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get of corrupt blob = %v, want ErrNotFound", err)
	}
	qs := lifecycleEvents(sink, "quarantine")
	if len(qs) != 1 || qs[0].Digest != d.String() {
		t.Fatalf("quarantine events = %+v, want one for %s", qs, d)
	}

	// Write failure degrades (threshold 1); the event carries the cause.
	ffs.Inject(&Fault{Op: "sync", Path: ".tmp-", Err: syscall.ENOSPC})
	if _, _, err := s.Put(blob("y", 400), nil); err == nil {
		t.Fatal("Put succeeded with failing fsync")
	}
	enter := lifecycleEvents(sink, "degraded_enter")
	if len(enter) != 1 || !strings.Contains(enter[0].Detail, "write failures") {
		t.Fatalf("degraded_enter events = %+v", enter)
	}

	// Fault clears; a due probe re-arms the store and emits the exit.
	ffs.Clear()
	clock = clock.Add(11 * time.Second)
	if _, _, err := s.Put(blob("y", 400), nil); err != nil {
		t.Fatalf("probe Put after fault cleared: %v", err)
	}
	if exit := lifecycleEvents(sink, "degraded_exit"); len(exit) != 1 {
		t.Fatalf("degraded_exit events = %d, want 1", len(exit))
	}
}

func TestStoreLifecycleFallsBackToActiveSink(t *testing.T) {
	sink := obs.NewEventSink(16)
	obs.SetEventSink(sink)
	defer obs.SetEventSink(nil)
	s := openTest(t, t.TempDir(), Options{Budget: 500})
	if _, _, err := s.Put(blob("a", 400), nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put(blob("b", 400), nil); err != nil {
		t.Fatal(err)
	}
	if got := lifecycleEvents(sink, "evict"); len(got) != 1 {
		t.Fatalf("process-wide sink saw %d evict events, want 1", len(got))
	}
}

func TestStoreContextOpsAttributeEvent(t *testing.T) {
	sink := obs.NewEventSink(16)
	s := openTest(t, t.TempDir(), Options{})
	ev := sink.NewEvent("http", "/experiments/{digest}")
	ctx := obs.ContextWithEvent(t.Context(), ev)

	data := blob("z", 300)
	d, created, err := s.PutContext(ctx, data, nil)
	if err != nil || !created {
		t.Fatalf("PutContext: %v created=%v", err, created)
	}
	got, err := s.GetContext(ctx, d)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("GetContext: %v", err)
	}
	f := ev.Fields()
	if f.StorePuts != 1 || f.StoreGets != 1 {
		t.Errorf("store puts/gets = %d/%d, want 1/1", f.StorePuts, f.StoreGets)
	}
	if f.StoreBytes != 600 {
		t.Errorf("store bytes = %d, want 600", f.StoreBytes)
	}
}

func TestStoreContextOpsTraced(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	tr := obs.NewTracer(obs.TracerOptions{SampleRate: 1, RingSize: 4})
	root := tr.StartTrace("request", "req1")
	ctx := obs.ContextWithSpan(t.Context(), root)

	data := blob("w", 200)
	d, _, err := s.PutContext(ctx, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetContext(ctx, d); err != nil {
		t.Fatal(err)
	}
	root.End()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	children := traces[0].Root().Children()
	var names []string
	for _, c := range children {
		names = append(names, c.Name())
	}
	want := []string{"store.put", "store.get"}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("request children = %v, want %v", names, want)
	}
	for _, c := range children {
		attrs := map[string]any{}
		for _, a := range c.Attrs() {
			attrs[a.Key] = a.Value
		}
		if attrs["bytes"] != int64(200) {
			t.Errorf("%s bytes attr = %v, want 200", c.Name(), attrs["bytes"])
		}
		if _, ok := attrs["verify_seconds"]; !ok {
			t.Errorf("%s missing verify_seconds attr", c.Name())
		}
	}
}

func TestStoreInventory(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Budget: 10_000})
	a := blob("a", 500)
	b := blob("b", 700)
	da, _, _ := s.Put(a, nil)
	if _, _, err := s.Put(b, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(da); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(DigestOf([]byte("missing"))); !errors.Is(err, ErrNotFound) {
		t.Fatal("expected miss")
	}
	if !s.Pin(da) {
		t.Fatal("pin failed")
	}
	defer s.Unpin(da)

	inv := s.Inventory()
	if inv.Blobs != 2 || inv.Bytes != 1200 {
		t.Errorf("blobs/bytes = %d/%d, want 2/1200", inv.Blobs, inv.Bytes)
	}
	if inv.Budget != 10_000 {
		t.Errorf("budget = %d", inv.Budget)
	}
	if inv.Pressure != 0.12 {
		t.Errorf("pressure = %g, want 0.12", inv.Pressure)
	}
	if inv.PinnedBlobs != 1 || inv.Pins != 1 {
		t.Errorf("pinned = %d/%d, want 1/1", inv.PinnedBlobs, inv.Pins)
	}
	if inv.Puts != 2 || inv.Gets != 1 || inv.GetMisses != 1 {
		t.Errorf("puts/gets/misses = %d/%d/%d, want 2/1/1", inv.Puts, inv.Gets, inv.GetMisses)
	}
	if inv.Degraded {
		t.Error("store reported degraded")
	}
	if inv.Recovery.Intact != 0 {
		t.Errorf("recovery intact = %d", inv.Recovery.Intact)
	}
}

func TestStoreInventoryQuarantineNewestFirst(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	for _, tag := range []string{"one", "two"} {
		d, _, err := s.Put(blob(tag, 100), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "blobs", d.String()), []byte("bad"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(d); !errors.Is(err, ErrNotFound) {
			t.Fatal("corrupt blob served")
		}
	}
	inv := s.Inventory()
	if len(inv.Quarantined) != 2 {
		t.Fatalf("quarantine records = %d, want 2", len(inv.Quarantined))
	}
	if !inv.Quarantined[0].Time.After(inv.Quarantined[1].Time) && inv.Quarantined[0].Time != inv.Quarantined[1].Time {
		t.Errorf("quarantine records not newest-first: %+v", inv.Quarantined)
	}
	for _, q := range inv.Quarantined {
		if q.Reason == "" || q.Name == "" {
			t.Errorf("incomplete quarantine record: %+v", q)
		}
	}
}
