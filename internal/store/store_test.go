package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cube/internal/obs"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = quietLogger()
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func blob(tag string, n int) []byte {
	b := bytes.Repeat([]byte(tag), n/len(tag)+1)
	return b[:n]
}

func TestParseDigest(t *testing.T) {
	d := DigestOf([]byte("payload"))
	got, ok := ParseDigest(d.String())
	if !ok || got != d {
		t.Fatalf("ParseDigest(%s) = %v, %v", d, got, ok)
	}
	for _, bad := range []string{"", "xyz", d.String()[:63], d.String() + "0", "G" + d.String()[1:]} {
		if _, ok := ParseDigest(bad); ok {
			t.Errorf("ParseDigest(%q) accepted", bad)
		}
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s := openTest(t, dir, Options{Metrics: reg})

	data := blob("a", 1000)
	d, created, err := s.Put(data, nil)
	if err != nil || !created {
		t.Fatalf("Put: created=%v err=%v", created, err)
	}
	if d != DigestOf(data) {
		t.Fatal("Put returned the wrong digest")
	}
	// Idempotent: the same bytes are not rewritten.
	if _, created, err = s.Put(data, nil); err != nil || created {
		t.Fatalf("repeat Put: created=%v err=%v, want false, nil", created, err)
	}
	if size, ok := s.Stat(d); !ok || size != 1000 {
		t.Fatalf("Stat = %d, %v", size, ok)
	}
	got, err := s.Get(d)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get: %v (equal=%v)", err, bytes.Equal(got, data))
	}
	if _, err := s.Get(DigestOf([]byte("absent"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent Get err = %v, want ErrNotFound", err)
	}
	// A declared digest that does not match the bytes is rejected.
	wrong := DigestOf([]byte("other"))
	if _, _, err := s.Put(data, &wrong); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("mismatched Put err = %v, want ErrDigestMismatch", err)
	}
	if hits := reg.Counter("cube_store_get_hits_total").Value(); hits != 1 {
		t.Errorf("get hits = %d, want 1", hits)
	}

	// The blob survives a restart.
	s2 := openTest(t, dir, Options{})
	if s2.Recovery.Intact != 1 || s2.Recovery.Quarantined != 0 {
		t.Fatalf("recovery = %+v, want 1 intact", s2.Recovery)
	}
	got, err = s2.Get(d)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get after reopen: %v", err)
	}
}

func TestEvictionLRUAndPinning(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s := openTest(t, dir, Options{Budget: 2500, Metrics: reg})

	a, b, c := blob("a", 1000), blob("b", 1000), blob("c", 1000)
	da, _, _ := s.Put(a, nil)
	db, _, _ := s.Put(b, nil)
	if _, _, err := s.Put(c, nil); err != nil {
		t.Fatal(err)
	}
	// a was least recently used and is gone; b and c remain.
	if _, ok := s.Stat(da); ok {
		t.Error("LRU blob survived eviction")
	}
	if _, ok := s.Stat(db); !ok {
		t.Error("recent blob was evicted")
	}
	if ev := reg.Counter("cube_store_evictions_total").Value(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	if s.Bytes() > 2500 {
		t.Errorf("store holds %d bytes over the 2500 budget", s.Bytes())
	}

	// Pin b: the next Put must evict c (LRU order says b, but it is in
	// use by an in-flight request).
	if !s.Pin(db) {
		t.Fatal("Pin(b) failed")
	}
	dd, _, err := s.Put(blob("d", 1000), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Stat(db); !ok {
		t.Error("pinned blob was evicted")
	}
	if _, ok := s.Stat(DigestOf(c)); ok {
		t.Error("unpinned blob survived while a pinned one should have been skipped")
	}

	// Everything pinned: the budget cannot be met, the store degrades.
	s.Pin(dd)
	_, _, err = s.Put(blob("e", 1000), nil)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("Put with all blobs pinned: err = %v, want ErrDegraded", err)
	}
	if deg, why := s.Degraded(); !deg || why == "" {
		t.Fatalf("store not degraded after budget breach (%v, %q)", deg, why)
	}
	// Reads still serve while degraded.
	if got, err := s.Get(db); err != nil || !bytes.Equal(got, b) {
		t.Fatalf("degraded Get: %v", err)
	}
	// Unpinning frees the budget; the next probe re-arms writes.
	s.Unpin(db)
	s.Unpin(dd)
	s.mu.Lock()
	s.lastProbe = s.lastProbe.Add(-2 * s.probe) // make the probe due now
	s.mu.Unlock()
	if _, created, err := s.Put(blob("e", 1000), nil); err != nil || !created {
		t.Fatalf("Put after unpin: created=%v err=%v", created, err)
	}
	if deg, _ := s.Degraded(); deg {
		t.Error("store still degraded after a successful probe")
	}
}

func TestOversizedBlobRejectedWithoutDegrading(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Budget: 100})
	_, _, err := s.Put(blob("x", 200), nil)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if deg, _ := s.Degraded(); deg {
		t.Error("an oversized client upload degraded the store")
	}
}

func TestGetQuarantinesCorruptBlob(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s := openTest(t, dir, Options{Metrics: reg})
	data := blob("q", 500)
	d, _, err := s.Put(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the committed file behind the store's back (bit rot).
	path := filepath.Join(dir, "blobs", d.String())
	if err := os.WriteFile(path, blob("X", 500), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(d); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt Get err = %v, want ErrNotFound (never corrupt bytes)", err)
	}
	if _, ok := s.Stat(d); ok {
		t.Error("corrupt blob still indexed")
	}
	if got := reg.Counter("cube_store_quarantined_total").Value(); got != 1 {
		t.Errorf("quarantined = %d, want 1", got)
	}
	quarantined, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(quarantined) != 1 {
		t.Fatalf("quarantine dir: %v entries, err %v (corrupt blobs are kept, not deleted)", len(quarantined), err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt blob still present under its committed name")
	}
}

func TestRecoveryQuarantinesCorruptAndPartialFiles(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	good := blob("good", 400)
	dg, _, err := s.Put(good, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := blob("bad", 400)
	db, _, err := s.Put(bad, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one committed blob and plant a leftover temp file and a
	// foreign file, then "restart".
	blobs := filepath.Join(dir, "blobs")
	if err := os.WriteFile(filepath.Join(blobs, db.String()), blob("EVIL", 400), 0o644); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(blobs, ".tmp-deadbeef-7"), blob("partial", 100), 0o644)
	os.WriteFile(filepath.Join(blobs, "README"), []byte("not a blob"), 0o644)

	reg := obs.NewRegistry()
	s2 := openTest(t, dir, Options{Metrics: reg})
	if s2.Recovery.Intact != 1 || s2.Recovery.Quarantined != 3 {
		t.Fatalf("recovery = %+v, want 1 intact / 3 quarantined", s2.Recovery)
	}
	if got, err := s2.Get(dg); err != nil || !bytes.Equal(got, good) {
		t.Fatalf("intact blob lost in recovery: %v", err)
	}
	if _, err := s2.Get(db); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt blob served after recovery: %v", err)
	}
	if got := reg.Counter("cube_store_quarantined_total").Value(); got != 3 {
		t.Errorf("quarantined counter = %d, want 3", got)
	}
	ents, _ := os.ReadDir(filepath.Join(dir, "quarantine"))
	if len(ents) != 3 {
		t.Errorf("quarantine holds %d files, want 3", len(ents))
	}
}

func TestRecoveryEvictsDownToBudget(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	for i := 0; i < 4; i++ {
		if _, _, err := s.Put(blob(fmt.Sprintf("blob%d", i), 1000), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen with a smaller budget: the scan must evict down to it.
	s2 := openTest(t, dir, Options{Budget: 2500})
	if s2.Recovery.Evicted != 2 {
		t.Fatalf("recovery evicted %d, want 2 (%+v)", s2.Recovery.Evicted, s2.Recovery)
	}
	if s2.Bytes() > 2500 || s2.Len() != 2 {
		t.Fatalf("post-recovery store: %d blobs, %d bytes", s2.Len(), s2.Bytes())
	}
}

// TestConcurrentPutGet hammers the store from many goroutines under a
// small budget so puts, gets, evictions, and verification interleave;
// run under -race this is the store's data-race check. The invariant:
// every Get returns either the exact original bytes or ErrNotFound.
func TestConcurrentPutGet(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Budget: 5000})
	var docs [][]byte
	var digests []Digest
	for i := 0; i < 8; i++ {
		d := blob(fmt.Sprintf("doc%d", i), 900+i)
		docs = append(docs, d)
		digests = append(digests, DigestOf(d))
	}
	const workers, iters = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				k := r.Intn(len(docs))
				if r.Intn(2) == 0 {
					// ErrDegraded is legal here: transient read pins can
					// momentarily make every blob unevictable.
					if _, _, err := s.Put(docs[k], nil); err != nil && !errors.Is(err, ErrDegraded) {
						t.Errorf("Put: %v", err)
						return
					}
					continue
				}
				got, err := s.Get(digests[k])
				switch {
				case err == nil:
					if !bytes.Equal(got, docs[k]) {
						t.Errorf("Get(%d) returned corrupt bytes", k)
						return
					}
				case errors.Is(err, ErrNotFound): // evicted: fine
				default:
					t.Errorf("Get: %v", err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if s.Bytes() > 5000 {
		t.Errorf("store exceeded its budget: %d bytes", s.Bytes())
	}
}
