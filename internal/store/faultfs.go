package store

import (
	"errors"
	"io/fs"
	"strings"
	"sync"
)

// ErrCrashed is what every FS call returns after a Crash fault fires: the
// simulated process is dead as far as the disk is concerned, so nothing —
// including cleanup paths like "remove the temp file on error" — reaches
// the filesystem anymore. Reopening the store on the same directory with a
// clean FS then models the post-crash restart.
var ErrCrashed = errors.New("faultfs: crashed")

// Fault is one scheduled filesystem failure. Faults match by operation
// name and path substring; a matching call decrements After until it hits
// zero, then the fault fires: the call returns Err (after writing Torn
// bytes, for write faults) and, if Crash is set, every later call on the
// FaultFS fails with ErrCrashed.
type Fault struct {
	// Op selects the call to fail: "mkdir", "create", "open", "write",
	// "read", "sync", "close", "rename", "remove", "readdir", "syncdir".
	Op string
	// Path is a substring the call's path must contain ("" matches any).
	Path string
	// After skips that many matching calls before firing.
	After int
	// Remaining bounds how many times the fault fires; 0 means it keeps
	// firing until Clear (a sustained failure such as a full disk).
	Remaining int
	// Err is the error returned by the failing call.
	Err error
	// Torn applies to "write": the underlying write persists only the
	// first Torn bytes (clamped to the buffer) before Err is returned —
	// a torn page / partial write.
	Torn int
	// Crash marks the fault as fatal: after it fires, all subsequent
	// calls return ErrCrashed until Clear.
	Crash bool

	fired int
}

// FaultFS wraps an FS with a deterministic fault schedule. It is the
// store's crash/ENOSPC/EIO test harness, modeled on the fault-injection
// suite in internal/server: tests declare exactly which call fails, run
// the workload, and assert the documented degraded behavior.
type FaultFS struct {
	Inner FS

	mu      sync.Mutex
	faults  []*Fault
	crashed bool
	calls   map[string]int
}

// NewFaultFS wraps inner (nil means OSFS) with an empty schedule.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OSFS{}
	}
	return &FaultFS{Inner: inner, calls: map[string]int{}}
}

// Inject appends faults to the schedule.
func (f *FaultFS) Inject(faults ...*Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = append(f.faults, faults...)
}

// Clear removes every scheduled fault and lifts the crashed state — the
// disk is healthy again.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = nil
	f.crashed = false
}

// Calls returns how many times op has been issued (fired or not).
func (f *FaultFS) Calls(op string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[op]
}

// check consults the schedule for one call; a non-nil fault means the
// call must fail with fault.Err.
func (f *FaultFS) check(op, path string) *Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls[op]++
	if f.crashed {
		return &Fault{Op: op, Err: ErrCrashed}
	}
	for _, ft := range f.faults {
		if ft.Op != op || !strings.Contains(path, ft.Path) {
			continue
		}
		if ft.After > 0 {
			ft.After--
			continue
		}
		if ft.Remaining > 0 && ft.fired >= ft.Remaining {
			continue
		}
		ft.fired++
		if ft.Crash {
			f.crashed = true
		}
		return ft
	}
	return nil
}

func (f *FaultFS) MkdirAll(dir string, perm fs.FileMode) error {
	if ft := f.check("mkdir", dir); ft != nil {
		return ft.Err
	}
	return f.Inner.MkdirAll(dir, perm)
}

func (f *FaultFS) Create(path string) (File, error) {
	if ft := f.check("create", path); ft != nil {
		return nil, ft.Err
	}
	file, err := f.Inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, path: path, File: file}, nil
}

func (f *FaultFS) Open(path string) (File, error) {
	if ft := f.check("open", path); ft != nil {
		return nil, ft.Err
	}
	file, err := f.Inner.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, path: path, File: file}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if ft := f.check("rename", newpath); ft != nil {
		return ft.Err
	}
	return f.Inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	if ft := f.check("remove", path); ft != nil {
		return ft.Err
	}
	return f.Inner.Remove(path)
}

func (f *FaultFS) ReadDir(dir string) ([]fs.DirEntry, error) {
	if ft := f.check("readdir", dir); ft != nil {
		return nil, ft.Err
	}
	return f.Inner.ReadDir(dir)
}

func (f *FaultFS) SyncDir(dir string) error {
	if ft := f.check("syncdir", dir); ft != nil {
		return ft.Err
	}
	return f.Inner.SyncDir(dir)
}

// faultFile threads per-call faults through an open file's reads, writes,
// syncs, and closes.
type faultFile struct {
	fs   *FaultFS
	path string
	File
}

func (f *faultFile) Write(p []byte) (int, error) {
	if ft := f.fs.check("write", f.path); ft != nil {
		n := ft.Torn
		if n > len(p) {
			n = len(p)
		}
		if n > 0 {
			f.File.Write(p[:n]) // the torn prefix reaches the disk
		}
		return n, ft.Err
	}
	return f.File.Write(p)
}

func (f *faultFile) Read(p []byte) (int, error) {
	if ft := f.fs.check("read", f.path); ft != nil {
		return 0, ft.Err
	}
	return f.File.Read(p)
}

func (f *faultFile) Sync() error {
	if ft := f.fs.check("sync", f.path); ft != nil {
		return ft.Err
	}
	return f.File.Sync()
}

func (f *faultFile) Close() error {
	if ft := f.fs.check("close", f.path); ft != nil {
		f.File.Close() // release the descriptor either way
		return ft.Err
	}
	return f.File.Close()
}
