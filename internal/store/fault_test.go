package store

// Fault-injection tests, modeled on internal/server's fault suite: each
// declares exactly which filesystem call fails (or tears, or crashes the
// process), runs the workload, and asserts the documented behavior — the
// crash-safety property, quarantine discipline, and degraded-mode entry,
// serving, and re-arming.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"cube/internal/obs"
)

// TestCrashRecoveryProperty is the acceptance property: for a crash
// injected at every point of the write path, a restarted store either
// serves the blob intact (its digest verifies) or reports it absent — it
// never serves corrupt bytes. Partial on-disk leftovers land in
// quarantine, never under a committed name.
func TestCrashRecoveryProperty(t *testing.T) {
	data := blob("crashy", 2048)
	d := DigestOf(data)
	cases := []struct {
		name  string
		fault *Fault
		// committedOK: the blob may legitimately survive the crash (the
		// fault fired after the rename reached the disk).
		committedOK bool
	}{
		{"before-temp-write", &Fault{Op: "create", Path: ".tmp-", Err: syscall.EIO, Crash: true}, false},
		{"mid-write-torn", &Fault{Op: "write", Path: ".tmp-", Torn: 700, Err: syscall.EIO, Crash: true}, false},
		{"before-fsync", &Fault{Op: "sync", Path: ".tmp-", Err: syscall.EIO, Crash: true}, false},
		{"before-rename", &Fault{Op: "rename", Path: d.String(), Err: syscall.EIO, Crash: true}, false},
		{"before-dir-fsync", &Fault{Op: "syncdir", Err: syscall.EIO, Crash: true}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := NewFaultFS(nil)
			s := openTest(t, dir, Options{FS: ffs})
			ffs.Inject(tc.fault)
			if _, _, err := s.Put(data, nil); err == nil {
				t.Fatal("Put succeeded through an injected crash")
			}

			// "Restart": a fresh store over the same directory with a
			// healthy filesystem runs the recovery scan.
			reg := obs.NewRegistry()
			s2 := openTest(t, dir, Options{Metrics: reg})
			got, err := s2.Get(d)
			switch {
			case err == nil:
				if !tc.committedOK {
					t.Errorf("blob served although the crash preceded commit")
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("restarted store served CORRUPT bytes")
				}
			case errors.Is(err, ErrNotFound): // absent: always acceptable
			default:
				t.Fatalf("Get after restart: %v", err)
			}

			// No partial file may survive under a committed name, and any
			// leftover temp file must be in quarantine and counted.
			blobs, _ := os.ReadDir(filepath.Join(dir, "blobs"))
			for _, de := range blobs {
				if _, ok := ParseDigest(de.Name()); !ok {
					t.Errorf("uncommitted file %q survived recovery in blobs/", de.Name())
				}
			}
			quarantined, _ := os.ReadDir(filepath.Join(dir, "quarantine"))
			if want := int64(len(quarantined)); reg.Counter("cube_store_quarantined_total").Value() != want {
				t.Errorf("quarantine counter = %d, dir holds %d",
					reg.Counter("cube_store_quarantined_total").Value(), want)
			}
			if s2.Recovery.Quarantined != len(quarantined) {
				t.Errorf("Recovery.Quarantined = %d, dir holds %d", s2.Recovery.Quarantined, len(quarantined))
			}

			// The restarted store accepts the blob again and serves it.
			if _, _, err := s2.Put(data, nil); err != nil {
				t.Fatalf("Put after recovery: %v", err)
			}
			if got, err := s2.Get(d); err != nil || !bytes.Equal(got, data) {
				t.Fatalf("Get after re-Put: %v", err)
			}
		})
	}
}

// TestTornWriteLeavesEvidence pins down the torn-write case in detail:
// the truncated temp file must land in quarantine with its partial bytes
// preserved.
func TestTornWriteLeavesEvidence(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	s := openTest(t, dir, Options{FS: ffs})
	data := blob("torn", 4096)
	ffs.Inject(&Fault{Op: "write", Path: ".tmp-", Torn: 1234, Err: syscall.EIO, Crash: true})
	if _, _, err := s.Put(data, nil); err == nil {
		t.Fatal("torn Put succeeded")
	}
	s2 := openTest(t, dir, Options{})
	if s2.Recovery.Quarantined != 1 || s2.Recovery.Intact != 0 {
		t.Fatalf("recovery = %+v, want exactly the torn temp file quarantined", s2.Recovery)
	}
	ents, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("quarantine: %d entries, err %v", len(ents), err)
	}
	qb, err := os.ReadFile(filepath.Join(dir, "quarantine", ents[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if len(qb) != 1234 || !bytes.Equal(qb, data[:1234]) {
		t.Errorf("quarantined evidence is %d bytes, want the 1234-byte torn prefix", len(qb))
	}
}

// TestSustainedWriteFailuresDegrade: ENOSPC on every fsync flips the
// store into degraded read-only mode after the failure threshold; reads
// keep serving; once the fault clears, the next due write probe re-arms
// the store. Mode transitions are counted.
func TestSustainedWriteFailuresDegrade(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	reg := obs.NewRegistry()
	clock := time.Unix(1000, 0)
	s := openTest(t, dir, Options{
		FS:               ffs,
		Metrics:          reg,
		FailureThreshold: 2,
		ProbeInterval:    10 * time.Second,
		now:              func() time.Time { return clock },
	})
	stored := blob("stored", 600)
	ds, _, err := s.Put(stored, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The disk fills up: every further write fails at fsync.
	ffs.Inject(&Fault{Op: "sync", Path: ".tmp-", Err: syscall.ENOSPC})
	fresh := blob("fresh", 600)
	for i := 0; i < 2; i++ {
		if _, _, err := s.Put(fresh, nil); err == nil {
			t.Fatal("Put succeeded on a full disk")
		}
		clock = clock.Add(time.Second)
	}
	if deg, why := s.Degraded(); !deg || why == "" {
		t.Fatalf("store not degraded after %d write failures", 2)
	}
	// Inside the probe interval, Put fails fast without touching the disk.
	creates := ffs.Calls("create")
	if _, _, err := s.Put(fresh, nil); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded Put err = %v, want ErrDegraded", err)
	}
	if ffs.Calls("create") != creates {
		t.Error("degraded fast-fail Put still touched the disk")
	}
	// Reads keep serving throughout.
	if got, err := s.Get(ds); err != nil || !bytes.Equal(got, stored) {
		t.Fatalf("degraded Get: %v", err)
	}

	// Fault persists: a due probe fails and the store stays degraded.
	clock = clock.Add(11 * time.Second)
	if _, _, err := s.Put(fresh, nil); errors.Is(err, ErrDegraded) || err == nil {
		t.Fatalf("due probe err = %v, want the underlying write error", err)
	}
	if deg, _ := s.Degraded(); !deg {
		t.Fatal("store re-armed although the probe failed")
	}

	// Fault clears: the next due probe succeeds and re-arms writes.
	ffs.Clear()
	clock = clock.Add(11 * time.Second)
	df, created, err := s.Put(fresh, nil)
	if err != nil || !created {
		t.Fatalf("probe after fault cleared: created=%v err=%v", created, err)
	}
	if deg, _ := s.Degraded(); deg {
		t.Fatal("store still degraded after a successful probe")
	}
	if got, err := s.Get(df); err != nil || !bytes.Equal(got, fresh) {
		t.Fatalf("Get after re-arm: %v", err)
	}
	if got := reg.Gauge("cube_store_degraded").Value(); got != 0 {
		t.Errorf("degraded gauge = %d, want 0", got)
	}
	for mode, want := range map[string]int64{"degraded": 1, "ok": 1} {
		if got := reg.Counter("cube_store_mode_transitions_total", obs.L("to", mode)).Value(); got != want {
			t.Errorf("transitions to %s = %d, want %d", mode, got, want)
		}
	}
}

// TestBelowThresholdFailuresDoNotDegrade: isolated write errors are
// retried territory, not a mode flip.
func TestBelowThresholdFailuresDoNotDegrade(t *testing.T) {
	ffs := NewFaultFS(nil)
	s := openTest(t, t.TempDir(), Options{FS: ffs, FailureThreshold: 3})
	ffs.Inject(&Fault{Op: "sync", Path: ".tmp-", Err: syscall.ENOSPC, Remaining: 2})
	data := blob("flaky", 300)
	for i := 0; i < 2; i++ {
		if _, _, err := s.Put(data, nil); err == nil {
			t.Fatal("Put succeeded through the fault")
		}
	}
	if deg, _ := s.Degraded(); deg {
		t.Fatal("two failures degraded a threshold-3 store")
	}
	// The third attempt succeeds (fault exhausted) and resets the count.
	if _, created, err := s.Put(data, nil); err != nil || !created {
		t.Fatalf("Put after transient fault: created=%v err=%v", created, err)
	}
}

// TestReadErrorQuarantines: an EIO mid-read on a committed blob must not
// surface corrupt or partial bytes — the blob is quarantined and the
// read reports not-found.
func TestReadErrorQuarantines(t *testing.T) {
	ffs := NewFaultFS(nil)
	reg := obs.NewRegistry()
	s := openTest(t, t.TempDir(), Options{FS: ffs, Metrics: reg})
	d, _, err := s.Put(blob("sick", 800), nil)
	if err != nil {
		t.Fatal(err)
	}
	ffs.Inject(&Fault{Op: "read", Path: d.String(), Err: syscall.EIO, Remaining: 1})
	if _, err := s.Get(d); !errors.Is(err, ErrNotFound) {
		t.Fatalf("EIO Get err = %v, want ErrNotFound", err)
	}
	if _, ok := s.Stat(d); ok {
		t.Error("unreadable blob still indexed")
	}
	if got := reg.Counter("cube_store_quarantined_total").Value(); got != 1 {
		t.Errorf("quarantined = %d, want 1", got)
	}
}
