package store

import (
	"io"
	"io/fs"
	"os"
)

// FS is the narrow filesystem seam the store writes through. Every byte
// the store persists or recovers flows over this interface, so the fault
// tests can inject torn writes, ENOSPC, EIO, and crash-at-any-point
// schedules deterministically (FaultFS) while production uses the real
// filesystem (OSFS).
type FS interface {
	// MkdirAll creates dir and its parents (like os.MkdirAll).
	MkdirAll(dir string, perm fs.FileMode) error
	// Create opens path for writing, truncating any previous content.
	Create(path string) (File, error)
	// Open opens path for reading.
	Open(path string) (File, error)
	// Rename atomically replaces newpath with oldpath. The store only
	// renames within one directory, so POSIX rename atomicity applies.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// ReadDir lists dir.
	ReadDir(dir string) ([]fs.DirEntry, error)
	// SyncDir fsyncs the directory itself, making a preceding rename
	// durable (the rename is only crash-safe once its directory entry
	// has reached the disk).
	SyncDir(dir string) error
}

// File is the store's view of an open file.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
}

// OSFS is the production FS: plain os calls.
type OSFS struct{}

func (OSFS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }

func (OSFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (OSFS) Open(path string) (File, error) { return os.Open(path) }

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(path string) error { return os.Remove(path) }

func (OSFS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
