package perfmodel

import (
	"math"
	"testing"

	"cube/internal/apps"
	"cube/internal/core"
	"cube/internal/expert"
	"cube/internal/mpisim"
)

func TestModelBuildValidates(t *testing.T) {
	cfg := apps.PescanConfig{Barriers: true}.WithDefaults()
	m := PescanModel(cfg, mpisim.Config{})
	e, err := m.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("model experiment invalid: %v", err)
	}
	if e.FindCallNode("main/solver/iterate/fft_forward") == nil {
		t.Errorf("model call tree incomplete")
	}
	if e.FindCallNode("main/solver/iterate/MPI_Barrier") == nil {
		t.Errorf("barrier phase missing from barrier model")
	}
	// Barrier-free variant has no barrier phase.
	cfg2 := cfg
	cfg2.Barriers = false
	e2, err := PescanModel(cfg2, mpisim.Config{}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if e2.FindCallNode("main/solver/iterate/MPI_Barrier") != nil {
		t.Errorf("barrier phase in barrier-free model")
	}
	// Predicted totals scale with iterations.
	total := e.MetricInclusive(e.FindMetricByName("Time"))
	cfgHalf := cfg
	cfgHalf.Iterations = cfg.Iterations / 2
	eHalf, err := PescanModel(cfgHalf, mpisim.Config{}).Build()
	if err != nil {
		t.Fatal(err)
	}
	totalHalf := eHalf.MetricInclusive(eHalf.FindMetricByName("Time"))
	if ratio := total / totalHalf; ratio < 1.8 || ratio > 2.2 {
		t.Errorf("iteration scaling ratio = %v, want ~2", ratio)
	}
}

func TestModelErrors(t *testing.T) {
	if _, err := (&Model{Title: "x", NP: 0, Roots: []*Phase{{Name: "main"}}}).Build(); err == nil {
		t.Errorf("np=0 accepted")
	}
	if _, err := (&Model{Title: "x", NP: 2}).Build(); err == nil {
		t.Errorf("empty model accepted")
	}
	if _, err := (&Model{Title: "x", NP: 2, Roots: []*Phase{{}}}).Build(); err == nil {
		t.Errorf("unnamed phase accepted")
	}
}

// Model validation workflow: Difference(measured, predicted). The model has
// no waiting terms, so the diff's inclusive Time per call path isolates the
// overheads — and the prediction should explain most of the measured time.
func TestModelVsMeasured(t *testing.T) {
	cfg := apps.PescanConfig{Barriers: true, Seed: 4, NoiseAmp: 0.01}.WithDefaults()
	run, err := apps.RunPescan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := expert.Analyze(run.Trace, &expert.Options{Nodes: cfg.Nodes})
	if err != nil {
		t.Fatal(err)
	}
	predicted, err := PescanModel(cfg, apps.PescanSimConfig(cfg)).Build()
	if err != nil {
		t.Fatal(err)
	}
	diff, err := core.Difference(measured, predicted, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := diff.Validate(); err != nil {
		t.Fatalf("diff invalid: %v", err)
	}

	mTotal := measured.MetricInclusive(measured.FindMetricByName("Time"))
	pTotal := predicted.MetricInclusive(predicted.FindMetricByName("Time"))
	dTotal := diff.MetricInclusive(diff.FindMetricByName("Time"))
	if math.Abs(dTotal-(mTotal-pTotal)) > 1e-6*mTotal {
		t.Errorf("diff total %v != measured-predicted %v", dTotal, mTotal-pTotal)
	}
	// The first-order model should explain the bulk of the measured time:
	// the residual is the un-modeled waiting, well under half the total.
	if dTotal < 0 {
		t.Errorf("model over-predicts: residual %v", dTotal)
	}
	if dTotal/mTotal > 0.4 {
		t.Errorf("model explains too little: residual fraction %.2f", dTotal/mTotal)
	}

	// The compute phases are modeled closely: per-call-path residuals of
	// fft_forward stay within noise (a few percent).
	fwd := diff.FindCallNode("main/solver/iterate/fft_forward")
	if fwd == nil {
		t.Fatalf("model and measurement call trees failed to align:\n%v", callPaths(diff))
	}
	var fwdResidual float64
	diffTime := diff.FindMetricByName("Time")
	diffTime.Walk(func(m *core.Metric) { fwdResidual += diff.MetricValue(m, fwd) })
	fwdMeasured := 0.0
	mt := measured.FindMetricByName("Time")
	mFwd := measured.FindCallNode("main/solver/iterate/fft_forward")
	mt.Walk(func(m *core.Metric) { fwdMeasured += measured.MetricValue(m, mFwd) })
	if math.Abs(fwdResidual)/fwdMeasured > 0.05 {
		t.Errorf("fft_forward residual %.1f%% of measured, want < 5%%", 100*fwdResidual/fwdMeasured)
	}

	// The barrier call path carries the un-modeled waiting: residual
	// clearly positive.
	bar := diff.FindCallNode("main/solver/iterate/MPI_Barrier")
	if bar == nil {
		t.Fatalf("barrier path missing from diff")
	}
	var barResidual float64
	diffTime.Walk(func(m *core.Metric) { barResidual += diff.MetricValue(m, bar) })
	if barResidual <= 0 {
		t.Errorf("barrier residual %v, want positive (waiting not modeled)", barResidual)
	}
}

func callPaths(e *core.Experiment) []string {
	var out []string
	for _, c := range e.CallNodes() {
		out = append(out, c.Path())
	}
	return out
}
