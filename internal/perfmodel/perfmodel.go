// Package perfmodel produces CUBE experiments from analytical performance
// models. The paper's introduction names model predictions as one of the
// data classes cross-experiment analysis must handle ("data coming from
// analytical models or simulations constitute another class of data that
// need to be compared to those already mentioned"); because predictions are
// encoded as ordinary experiments, the algebra compares them with measured
// data directly — Difference(measured, predicted) is the model-validation
// view, browsable like any experiment.
package perfmodel

import (
	"fmt"

	"cube/internal/apps"
	"cube/internal/core"
	"cube/internal/mpisim"
)

// Phase is a node of an analytical model: a program phase with a predicted
// per-rank execution time and optional sub-phases. Phase names should match
// the measured call tree's region names so metadata integration aligns the
// prediction with the measurement.
type Phase struct {
	// Name is the region name of the phase.
	Name string
	// Module is the region's module ("app" by default).
	Module string
	// Time predicts the accumulated time rank spends in exactly this
	// phase (exclusive of children) over the whole run; nil means zero.
	Time func(rank int) float64
	// Visits predicts how often the phase runs; nil means zero/unknown.
	Visits func(rank int) float64
	// Children are the sub-phases.
	Children []*Phase
}

// Model is a complete analytical model of a program run.
type Model struct {
	// Title labels the prediction experiment.
	Title string
	// NP and Nodes describe the predicted system.
	NP, Nodes int
	// Roots are the top-level phases (usually a single "main").
	Roots []*Phase
}

// Build evaluates the model into a CUBE experiment with a predicted-Time
// metric tree (Time → Computation/Communication are up to the model's
// phase structure; severities are stored at the phases) and a Visits root.
func (m *Model) Build() (*core.Experiment, error) {
	if m.NP <= 0 {
		return nil, fmt.Errorf("perfmodel: model needs a positive process count")
	}
	if len(m.Roots) == 0 {
		return nil, fmt.Errorf("perfmodel: model has no phases")
	}
	e := core.New(m.Title)
	e.Attrs["perfmodel"] = "analytical prediction"
	timeM := e.NewMetric("Time", core.Seconds, "Predicted wall-clock time per call path")
	visitsM := e.NewMetric("Visits", core.Occurrences, "Predicted visits per call path")
	threads := e.SingleThreadedSystem("model", maxInt(m.Nodes, 1), m.NP)

	regions := map[string]*core.Region{}
	regionFor := func(name, module string) *core.Region {
		if module == "" {
			module = "app"
		}
		key := name + "\x00" + module
		if r, ok := regions[key]; ok {
			return r
		}
		r := e.NewRegion(name, module, 0, 0)
		regions[key] = r
		return r
	}

	var build func(p *Phase, parent *core.CallNode) error
	build = func(p *Phase, parent *core.CallNode) error {
		if p.Name == "" {
			return fmt.Errorf("perfmodel: phase with empty name")
		}
		r := regionFor(p.Name, p.Module)
		site := e.NewCallSite(r.Module, 0, r)
		var cn *core.CallNode
		if parent == nil {
			cn = e.NewCallRoot(site)
		} else {
			cn = parent.NewChild(site)
			e.Invalidate()
		}
		for rank, th := range threads {
			if p.Time != nil {
				e.SetSeverity(timeM, cn, th, p.Time(rank))
			}
			if p.Visits != nil {
				e.SetSeverity(visitsM, cn, th, p.Visits(rank))
			}
		}
		for _, c := range p.Children {
			if err := build(c, cn); err != nil {
				return err
			}
		}
		return nil
	}
	for _, root := range m.Roots {
		if err := build(root, nil); err != nil {
			return nil, err
		}
	}
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("perfmodel: model produced invalid experiment: %w", err)
	}
	return e, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// neighbors counts a rank's chain neighbors (1 at the boundaries, else 2).
func neighbors(rank, np int) float64 {
	n := 0.0
	if rank > 0 {
		n++
	}
	if rank < np-1 {
		n++
	}
	return n
}

// PescanModel is a first-order analytical model of the PESCAN-like solver
// (apps.Pescan): pure computation plus latency/bandwidth communication
// terms, with the same region names and call structure as the measured
// code. It deliberately models no waiting times — so the difference
// against a measured experiment exposes exactly the imbalance- and
// synchronisation-induced overheads.
func PescanModel(c apps.PescanConfig, sim mpisim.Config) *Model {
	c = c.WithDefaults()
	sim = sim.WithDefaults()
	np := c.NP
	it := float64(c.Iterations)
	d := func(rank int) float64 {
		if np <= 1 {
			return 0
		}
		return c.ImbalanceSec * float64(rank) / float64(np-1)
	}
	transfer := func(bytes int64) float64 {
		return sim.Latency + float64(bytes)/sim.Bandwidth
	}
	constT := func(v float64) func(int) float64 {
		return func(int) float64 { return v }
	}
	visits := func(v float64) func(int) float64 {
		return func(int) float64 { return v }
	}

	iterate := &Phase{
		Name: "iterate", Visits: visits(it),
		Children: []*Phase{
			{Name: "fft_forward", Visits: visits(it),
				Time: func(rank int) float64 { return it * (c.FFTSec + d(rank)) }},
			{Name: "exchange", Visits: visits(it),
				// One message per chain neighbor (interior ranks have
				// two); the model charges pure transfer cost, no waiting.
				Children: []*Phase{
					{Name: "MPI_Send", Module: "libmpi",
						Visits: func(rank int) float64 { return it * neighbors(rank, np) },
						Time: func(rank int) float64 {
							return it * neighbors(rank, np) * sim.SendOverhead
						}},
					{Name: "MPI_Recv", Module: "libmpi",
						Visits: func(rank int) float64 { return it * neighbors(rank, np) },
						Time: func(rank int) float64 {
							return it * neighbors(rank, np) * (transfer(c.HaloBytes) + sim.RecvOverhead)
						}},
				}},
			{Name: "apply_potential", Visits: visits(it), Time: constT(it * c.ApplySec)},
			{Name: "fft_backward", Visits: visits(it),
				Time: func(rank int) float64 { return it * (c.FFTSec - d(rank)) }},
			{Name: "transpose", Visits: visits(it),
				Children: []*Phase{
					{Name: "MPI_Alltoall", Module: "libmpi", Visits: visits(it),
						Time: constT(it * (2*sim.Latency + float64(np-1)*float64(c.TransposeBytes)/sim.Bandwidth))},
				}},
			{Name: "dotprod", Visits: visits(it),
				Time: constT(it * 0.05e-3),
				Children: []*Phase{
					{Name: "MPI_Allreduce", Module: "libmpi", Visits: visits(it),
						Time: constT(it * 8 * sim.Latency)},
				}},
		},
	}
	if c.Barriers {
		barrier := &Phase{Name: "MPI_Barrier", Module: "libmpi", Visits: visits(2 * it),
			Time: constT(it * 2 * c.BarrierCostSec)}
		iterate.Children = append(iterate.Children, barrier)
	}
	main := &Phase{Name: "main", Visits: visits(1),
		Children: []*Phase{
			{Name: "solver", Visits: visits(1), Time: constT(c.ApplySec),
				Children: []*Phase{iterate}},
		}}
	title := "pescan (analytical model)"
	return &Model{Title: title, NP: np, Nodes: c.Nodes, Roots: []*Phase{main}}
}
