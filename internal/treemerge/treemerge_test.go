package treemerge

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// shape renders a forest as a deterministic string for comparison.
func shape(f []*Node) string {
	var sb strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		sb.WriteString(strings.Repeat(" ", depth))
		sb.WriteString(n.Key)
		sb.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, n := range f {
		walk(n, 0)
	}
	return sb.String()
}

func TestMergeDisjointForests(t *testing.T) {
	a := []*Node{New("a", 1).Add(New("a1", 2))}
	b := []*Node{New("b", 3).Add(New("b1", 4))}
	r := Merge(a, b)
	want := "a\n a1\nb\n b1\n"
	if got := shape(r.Forest); got != want {
		t.Fatalf("forest shape:\n%s\nwant:\n%s", got, want)
	}
	if len(r.FromA) != 2 || len(r.FromB) != 2 {
		t.Fatalf("mappings sizes: %d, %d", len(r.FromA), len(r.FromB))
	}
}

func TestMergeSharedNodes(t *testing.T) {
	a := []*Node{New("root", "A").Add(New("x", "Ax"), New("y", "Ay"))}
	b := []*Node{New("root", "B").Add(New("y", "By"), New("z", "Bz"))}
	r := Merge(a, b)
	want := "root\n x\n y\n z\n"
	if got := shape(r.Forest); got != want {
		t.Fatalf("forest shape:\n%s\nwant:\n%s", got, want)
	}
	// Shared node payload comes from the first operand.
	if r.Forest[0].Payload != "A" {
		t.Errorf("shared payload = %v, want A", r.Forest[0].Payload)
	}
	// Both roots map to the same shared node.
	if r.FromA[a[0]] != r.FromB[b[0]] {
		t.Errorf("roots not mapped to the same shared node")
	}
	// Unshared nodes map to distinct copies.
	if r.FromA[a[0].Children[0]] == nil || r.FromB[b[0].Children[1]] == nil {
		t.Errorf("unshared nodes missing from mappings")
	}
}

// Top-down semantics: once parents differ, matching children stay separate.
func TestMergeTopDown(t *testing.T) {
	a := []*Node{New("p", nil).Add(New("shared", "fromA"))}
	b := []*Node{New("q", nil).Add(New("shared", "fromB"))}
	r := Merge(a, b)
	want := "p\n shared\nq\n shared\n"
	if got := shape(r.Forest); got != want {
		t.Fatalf("top-down merge violated:\n%s\nwant:\n%s", got, want)
	}
	if r.FromA[a[0].Children[0]] == r.FromB[b[0].Children[0]] {
		t.Errorf("children under different parents were shared")
	}
}

func TestMergeDuplicateSiblingKeys(t *testing.T) {
	a := []*Node{New("r", nil).Add(New("d", "a0"), New("d", "a1"))}
	b := []*Node{New("r", nil).Add(New("d", "b0"), New("d", "b1"), New("d", "b2"))}
	r := Merge(a, b)
	root := r.Forest[0]
	if len(root.Children) != 3 {
		t.Fatalf("children = %d, want 3 (positional pairing)", len(root.Children))
	}
	// First-with-first pairing preserves order; payloads from a where
	// shared.
	if root.Children[0].Payload != "a0" || root.Children[1].Payload != "a1" || root.Children[2].Payload != "b2" {
		t.Errorf("payloads = %v %v %v", root.Children[0].Payload, root.Children[1].Payload, root.Children[2].Payload)
	}
}

func TestMergeDoesNotAliasInputs(t *testing.T) {
	a := []*Node{New("r", nil).Add(New("x", nil))}
	b := []*Node{New("r", nil)}
	r := Merge(a, b)
	r.Forest[0].Key = "mutated"
	r.Forest[0].Children[0].Key = "mutated"
	if a[0].Key != "r" || a[0].Children[0].Key != "x" || b[0].Key != "r" {
		t.Errorf("inputs were aliased by the merge")
	}
}

func TestMergeAllThreeForests(t *testing.T) {
	a := []*Node{New("m", "a").Add(New("c1", nil))}
	b := []*Node{New("m", "b").Add(New("c2", nil))}
	c := []*Node{New("m", "c").Add(New("c1", nil), New("c3", nil))}
	merged, maps := MergeAll(a, b, c)
	want := "m\n c1\n c2\n c3\n"
	if got := shape(merged); got != want {
		t.Fatalf("3-way merge shape:\n%s\nwant:\n%s", got, want)
	}
	// All three roots map to the same merged node, payload from the
	// leftmost operand.
	if merged[0].Payload != "a" {
		t.Errorf("payload = %v, want a", merged[0].Payload)
	}
	if maps[0][a[0]] != maps[1][b[0]] || maps[1][b[0]] != maps[2][c[0]] {
		t.Errorf("root mappings disagree across operands")
	}
	// c's c1 shares with a's c1.
	if maps[0][a[0].Children[0]] != maps[2][c[0].Children[0]] {
		t.Errorf("c1 not shared between first and third operand")
	}
}

func TestMergeAllEmpty(t *testing.T) {
	f, m := MergeAll()
	if f != nil || m != nil {
		t.Errorf("MergeAll() = %v, %v; want nil, nil", f, m)
	}
	single, maps := MergeAll([]*Node{New("x", nil)})
	if shape(single) != "x\n" || len(maps) != 1 {
		t.Errorf("single-forest MergeAll misbehaved")
	}
}

func TestMergeEmptyOperand(t *testing.T) {
	a := []*Node{New("x", nil)}
	r := Merge(a, nil)
	if shape(r.Forest) != "x\n" {
		t.Errorf("merge with empty forest: %q", shape(r.Forest))
	}
	r = Merge(nil, a)
	if shape(r.Forest) != "x\n" {
		t.Errorf("merge of empty forest with a: %q", shape(r.Forest))
	}
}

func TestValidate(t *testing.T) {
	ok := []*Node{New("a", nil).Add(New("b", nil))}
	if err := Validate(ok); err != nil {
		t.Errorf("valid forest rejected: %v", err)
	}
	if err := Validate([]*Node{nil}); err == nil {
		t.Errorf("nil node accepted")
	}
	shared := New("s", nil)
	dag := []*Node{New("a", nil).Add(shared), New("b", nil).Add(shared)}
	if err := Validate(dag); err == nil {
		t.Errorf("DAG accepted")
	}
	cyc := New("c", nil)
	cyc.Children = append(cyc.Children, cyc)
	if err := Validate([]*Node{cyc}); err == nil {
		t.Errorf("cycle accepted")
	}
}

func TestSizeAndWalk(t *testing.T) {
	n := New("a", nil).Add(New("b", nil).Add(New("c", nil)), New("d", nil))
	if n.Size() != 4 {
		t.Errorf("Size = %d, want 4", n.Size())
	}
	var order []string
	n.Walk(func(m *Node) { order = append(order, m.Key) })
	if !reflect.DeepEqual(order, []string{"a", "b", "c", "d"}) {
		t.Errorf("pre-order walk = %v", order)
	}
}

// randomForest builds a small random forest from a seed.
func randomForest(r *rand.Rand, depth int) []*Node {
	n := 1 + r.Intn(3)
	var out []*Node
	for i := 0; i < n; i++ {
		node := New(string(rune('a'+r.Intn(4))), nil)
		if depth > 0 && r.Intn(2) == 0 {
			node.Children = randomForest(r, depth-1)
		}
		out = append(out, node)
	}
	return out
}

// Property: merging a forest with a structurally identical copy yields the
// same shape (idempotence of the structural merge).
func TestQuickMergeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomForest(r, 3)
		r2 := rand.New(rand.NewSource(seed))
		b := randomForest(r2, 3)
		m := Merge(a, b)
		return shape(m.Forest) == shape(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every input node appears in its mapping, and mapped targets are
// members of the merged forest.
func TestQuickMappingsComplete(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomForest(rand.New(rand.NewSource(seedA)), 3)
		b := randomForest(rand.New(rand.NewSource(seedB)), 3)
		m := Merge(a, b)
		members := map[*Node]bool{}
		for _, n := range m.Forest {
			n.Walk(func(x *Node) { members[x] = true })
		}
		ok := true
		for _, n := range a {
			n.Walk(func(x *Node) {
				if !members[m.FromA[x]] {
					ok = false
				}
			})
		}
		for _, n := range b {
			n.Walk(func(x *Node) {
				if !members[m.FromB[x]] {
					ok = false
				}
			})
		}
		return ok && Validate(m.Forest) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
