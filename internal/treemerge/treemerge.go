// Package treemerge implements the top-down structural merge of arbitrary
// trees that underlies CUBE's metadata integration.
//
// The paper reduces the integration of metric trees and call trees to "the
// task of merging arbitrary trees": while traversing from the roots to the
// leaves, nodes from the two input forests are matched using an equality
// relation expressed here as a string key. Nodes that match become shared
// nodes in the output; nodes that do not match are included separately.
// Matching is strictly top-down: once two nodes are considered different,
// their entire subtrees stay separate in the output even if they contain
// children with equal keys (Karavanic & Miller's structural merge).
package treemerge

import "fmt"

// Node is a neutral tree node used as the common currency of the merge.
// Key encodes the equality relation for the dimension being merged (for
// example "name\x00unit" for metrics, or the callee identity for call-tree
// nodes). Payload carries the dimension-specific node (e.g. *core.Metric) so
// callers can rebuild their own structures from the merged forest.
type Node struct {
	Key      string
	Payload  any
	Children []*Node
}

// New returns a leaf node with the given key and payload.
func New(key string, payload any) *Node {
	return &Node{Key: key, Payload: payload}
}

// Add appends child nodes and returns the receiver for chaining.
func (n *Node) Add(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// Walk visits n and all descendants in pre-order.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Size reports the number of nodes in the subtree rooted at n.
func (n *Node) Size() int {
	s := 0
	n.Walk(func(*Node) { s++ })
	return s
}

// Mapping records, for every node of an input forest, the node of the merged
// forest it ended up as (either a shared node or a copied node).
type Mapping map[*Node]*Node

// Result is the outcome of merging two forests.
type Result struct {
	Forest []*Node // merged forest
	FromA  Mapping // input node (first operand) -> merged node
	FromB  Mapping // input node (second operand) -> merged node
}

// Merge merges forest b into forest a, top-down, and returns the merged
// forest plus mappings from every input node to its merged counterpart.
// The inputs are not modified; the merged forest consists of fresh nodes
// whose Payload is taken from the first operand when a node is shared, and
// from whichever operand contributed the node otherwise.
//
// Duplicate keys among siblings of one input are tolerated: the first
// occurrence in a is matched with the first occurrence in b, the second with
// the second, and so on, preserving input order.
func Merge(a, b []*Node) Result {
	res := Result{FromA: Mapping{}, FromB: Mapping{}}
	res.Forest = mergeLevel(a, b, &res)
	return res
}

// MergeAll folds Merge over an arbitrary number of forests, left to right.
// It returns the merged forest plus one mapping per input forest. Payloads
// of shared nodes come from the leftmost operand that contributed them.
func MergeAll(forests ...[]*Node) ([]*Node, []Mapping) {
	if len(forests) == 0 {
		return nil, nil
	}
	maps := make([]Mapping, len(forests))
	// Start with a deep copy of the first forest so inputs are not aliased.
	maps[0] = Mapping{}
	acc := copyForest(forests[0], maps[0])
	for i := 1; i < len(forests); i++ {
		r := Merge(acc, forests[i])
		// Re-route earlier mappings through the new merge.
		for j := 0; j < i; j++ {
			for in, mid := range maps[j] {
				maps[j][in] = r.FromA[mid]
			}
		}
		maps[i] = r.FromB
		acc = r.Forest
	}
	return acc, maps
}

func copyForest(f []*Node, m Mapping) []*Node {
	out := make([]*Node, 0, len(f))
	for _, n := range f {
		out = append(out, copyTree(n, m))
	}
	return out
}

func copyTree(n *Node, m Mapping) *Node {
	c := &Node{Key: n.Key, Payload: n.Payload}
	m[n] = c
	for _, ch := range n.Children {
		c.Children = append(c.Children, copyTree(ch, m))
	}
	return c
}

// mergeLevel merges two sibling lists. Nodes of a are emitted first (in
// order), each fused with its positional key-match from b when one exists;
// unmatched b nodes follow in their input order.
func mergeLevel(a, b []*Node, res *Result) []*Node {
	// Positional matching per key: count how many times each key was
	// consumed from b so duplicate sibling keys pair first-with-first.
	type slot struct {
		nodes []*Node
		next  int
	}
	byKey := map[string]*slot{}
	for _, bn := range b {
		s := byKey[bn.Key]
		if s == nil {
			s = &slot{}
			byKey[bn.Key] = s
		}
		s.nodes = append(s.nodes, bn)
	}
	used := map[*Node]bool{}
	var out []*Node
	for _, an := range a {
		var match *Node
		if s := byKey[an.Key]; s != nil && s.next < len(s.nodes) {
			match = s.nodes[s.next]
			s.next++
			used[match] = true
		}
		if match == nil {
			out = append(out, copyTreeInto(an, res.FromA))
			continue
		}
		shared := &Node{Key: an.Key, Payload: an.Payload}
		res.FromA[an] = shared
		res.FromB[match] = shared
		shared.Children = mergeLevel(an.Children, match.Children, res)
		out = append(out, shared)
	}
	for _, bn := range b {
		if !used[bn] {
			out = append(out, copyTreeInto(bn, res.FromB))
		}
	}
	return out
}

func copyTreeInto(n *Node, m Mapping) *Node {
	c := &Node{Key: n.Key, Payload: n.Payload}
	m[n] = c
	for _, ch := range n.Children {
		c.Children = append(c.Children, copyTreeInto(ch, m))
	}
	return c
}

// Validate checks structural sanity of a forest: no nil nodes and no cycles.
// It returns an error naming the first offending node.
func Validate(f []*Node) error {
	seen := map[*Node]bool{}
	var visit func(n *Node, depth int) error
	visit = func(n *Node, depth int) error {
		if n == nil {
			return fmt.Errorf("treemerge: nil node at depth %d", depth)
		}
		if seen[n] {
			return fmt.Errorf("treemerge: node %q appears more than once (cycle or DAG)", n.Key)
		}
		seen[n] = true
		for _, c := range n.Children {
			if err := visit(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, n := range f {
		if err := visit(n, 0); err != nil {
			return err
		}
	}
	return nil
}
