// End-to-end tests of the command-line tools: the binaries are built once
// and driven through the paper's workflows — generate experiments, diff,
// mean, merge, view, info — over real files.
package cube_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// buildTools compiles all cmd/ binaries into a shared temp dir.
func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "cube-bin")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", binDir+string(os.PathSeparator), "./cmd/...")
		cmd.Dir = "."
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = err
			_ = out
			buildErr = &buildFailure{err: err, out: string(out)}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return binDir
}

type buildFailure struct {
	err error
	out string
}

func (b *buildFailure) Error() string { return b.err.Error() + "\n" + b.out }

// run executes a tool and returns its combined output, failing the test on
// non-zero exit.
func run(t *testing.T, dir, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildTools(t), tool), args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

// runExpectError executes a tool expecting a non-zero exit.
func runExpectError(t *testing.T, dir, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildTools(t), tool), args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v unexpectedly succeeded:\n%s", tool, args, out)
	}
	return string(out)
}

func TestCLIPescanDiffWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()

	// Generate the two §5.1 experiments (few iterations for speed: the
	// shape survives).
	run(t, dir, "cube-gen", "-app", "pescan", "-barriers", "-seed", "1", "-o", "before.cube")
	run(t, dir, "cube-gen", "-app", "pescan", "-seed", "9", "-o", "after.cube")

	// Difference.
	out := run(t, dir, "cube-diff", "-o", "diff.cube", "before.cube", "after.cube")
	if !strings.Contains(out, "difference(") {
		t.Errorf("cube-diff output: %q", out)
	}

	// View the derived experiment like an original one.
	view := run(t, dir, "cube-view", "-metric", "Wait at Barrier", "-mode", "percent", "-hidezero", "diff.cube")
	for _, want := range []string{"Wait at Barrier", "derived: difference", "Metric tree", "System tree"} {
		if !strings.Contains(view, want) {
			t.Errorf("cube-view lacks %q:\n%s", want, view)
		}
	}

	// Flat-profile view.
	flat := run(t, dir, "cube-view", "-flat", "-hidezero", "diff.cube")
	if !strings.Contains(flat, "derived: flatten") {
		t.Errorf("flat view not derived by flatten:\n%s", flat)
	}

	// Info on one file and structural comparison of two.
	info := run(t, dir, "cube-info", "before.cube", "after.cube")
	for _, want := range []string{"metrics:", "structural comparison", "similarity"} {
		if !strings.Contains(info, want) {
			t.Errorf("cube-info lacks %q:\n%s", want, info)
		}
	}
}

func TestCLIMeanAndMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()

	// Three perturbed runs, averaged two ways.
	for i, seed := range []string{"1", "2", "3"} {
		run(t, dir, "cube-gen", "-app", "sweep3d", "-seed", seed, "-noise", "0.1",
			"-o", "run"+string(rune('0'+i))+".cube")
	}
	run(t, dir, "cube-mean", "-o", "mean.cube", "run0.cube", "run1.cube", "run2.cube")
	run(t, dir, "cube-mean", "-min", "-o", "min.cube", "run0.cube", "run1.cube", "run2.cube")
	out := run(t, dir, "cube-info", "mean.cube", "min.cube")
	if !strings.Contains(out, `derived by "mean"`) || !strings.Contains(out, `derived by "min"`) {
		t.Errorf("mean/min provenance missing:\n%s", out)
	}

	// Conflicting counters force two CONE files; merging them with the
	// trace analysis yields the Fig. 3 experiment.
	genOut := run(t, dir, "cube-gen", "-app", "sweep3d", "-tool", "cone",
		"-events", "PAPI_FP_INS,PAPI_L1_DCM", "-seed", "4", "-o", "prof.cube")
	if !strings.Contains(genOut, "prof-set0.cube") || !strings.Contains(genOut, "prof-set1.cube") {
		t.Fatalf("event sets not split into files:\n%s", genOut)
	}
	run(t, dir, "cube-merge", "-o", "merged.cube", "mean.cube", "prof-set0.cube", "prof-set1.cube")
	info := run(t, dir, "cube-info", "merged.cube")
	for _, want := range []string{"PAPI_FP_INS", "PAPI_L1_DCM", "Time"} {
		if !strings.Contains(info, want) {
			t.Errorf("merged experiment lacks %q:\n%s", want, info)
		}
	}
}

func TestCLIHybridAndTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	run(t, dir, "cube-gen", "-app", "hybrid", "-np", "4", "-threads", "3",
		"-seed", "2", "-o", "hybrid.cube", "-trace", "hybrid.epgo")
	if _, err := os.Stat(filepath.Join(dir, "hybrid.epgo")); err != nil {
		t.Fatalf("trace file missing: %v", err)
	}
	info := run(t, dir, "cube-info", "hybrid.cube")
	if !strings.Contains(info, "12 threads") {
		t.Errorf("hybrid system shape wrong:\n%s", info)
	}
	view := run(t, dir, "cube-view", "-metric", "Wait at OpenMP Barrier",
		"-mode", "percent", "-hidezero", "hybrid.cube")
	if !strings.Contains(view, "thread 1") {
		t.Errorf("thread level missing from view:\n%s", view)
	}
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	runExpectError(t, dir, "cube-diff", "missing-a.cube", "missing-b.cube")
	runExpectError(t, dir, "cube-gen", "-app", "nope", "-o", "x.cube")
	runExpectError(t, dir, "cube-gen", "-app", "pescan", "-events", "PAPI_FP_INS,PAPI_L1_DCM", "-o", "x.cube")
	os.WriteFile(filepath.Join(dir, "bad.cube"), []byte("not xml"), 0o644)
	runExpectError(t, dir, "cube-view", "bad.cube")
	runExpectError(t, dir, "cube-mean", "-min", "-max", "bad.cube")
}

func TestCLIInteractiveView(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	run(t, dir, "cube-gen", "-app", "sweep3d", "-seed", "6", "-o", "s.cube")
	cmd := exec.Command(filepath.Join(buildTools(t), "cube-view"), "-i", "s.cube")
	cmd.Dir = dir
	cmd.Stdin = strings.NewReader("metric Late Sender\nmode percent\ntopology\nquit\n")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("interactive session: %v\n%s", err, out)
	}
	for _, want := range []string{"Call tree (metric: Late Sender", "mode: percent", `Topology "sweep grid"`} {
		if !strings.Contains(string(out), want) {
			t.Errorf("interactive output lacks %q:\n%s", want, out)
		}
	}
}

func TestCLITraceTool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	run(t, dir, "cube-gen", "-app", "sweep3d", "-seed", "5", "-o", "x.cube", "-trace", "x.epgo")
	stats := run(t, dir, "cube-trace", "stats", "x.epgo")
	for _, want := range []string{"program:", "events:", "duration:", "threads per rank"} {
		if !strings.Contains(stats, want) {
			t.Errorf("stats lacks %q:\n%s", want, stats)
		}
	}
	if out := run(t, dir, "cube-trace", "validate", "x.epgo"); !strings.Contains(out, "valid") {
		t.Errorf("validate output: %s", out)
	}
	dump := run(t, dir, "cube-trace", "dump", "-n", "5", "x.epgo")
	if !strings.Contains(dump, "ENTER") || !strings.Contains(dump, "more") {
		t.Errorf("dump output:\n%s", dump)
	}
	out := run(t, dir, "cube-trace", "analyze", "-o", "fromtrace.cube", "-nodes", "4", "x.epgo")
	if !strings.Contains(out, "wrote fromtrace.cube") {
		t.Errorf("analyze output: %s", out)
	}
	info := run(t, dir, "cube-info", "fromtrace.cube")
	if !strings.Contains(info, "Late Sender") && !strings.Contains(info, "Time") {
		t.Errorf("analyzed experiment odd:\n%s", info)
	}
	runExpectError(t, dir, "cube-trace", "stats", "missing.epgo")
}

func TestCLIRepro(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	out := run(t, dir, "cube-repro", "-fig", "1")
	if !strings.Contains(out, "paper 13.2%") {
		t.Errorf("cube-repro fig1 output:\n%s", out)
	}
	out = run(t, dir, "cube-repro", "-tracesize")
	if !strings.Contains(out, "CONE call-graph profile") {
		t.Errorf("cube-repro tracesize output:\n%s", out)
	}
}

// TestCLITraceExport: -trace writes the run's span trees as valid Chrome
// trace-event JSON, spanning the operator down to its kernel stages.
func TestCLITraceExport(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	run(t, dir, "cube-gen", "-app", "pescan", "-barriers", "-seed", "1", "-o", "before.cube")
	run(t, dir, "cube-gen", "-app", "pescan", "-seed", "9", "-o", "after.cube")
	run(t, dir, "cube-diff", "-trace", "trace.json", "-o", "diff.cube", "before.cube", "after.cube")

	data, err := os.ReadFile(filepath.Join(dir, "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("-trace output is not valid trace-event JSON: %v", err)
	}
	names := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name]++
		}
	}
	for _, want := range []string{"op.difference", "integrate", "lower", "kernel", "materialize"} {
		if names[want] == 0 {
			t.Errorf("trace lacks %q events; got %v", want, names)
		}
	}
}
