package cube_test

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"cube"
)

// buildPublic builds an experiment exclusively through the public API.
func buildPublic(title string, waitSec float64) *cube.Experiment {
	e := cube.New(title)
	time := e.NewMetric("Time", cube.Seconds, "total time")
	comm := time.NewChild("Communication", "")
	wait := comm.NewChild("Late Sender", "")

	mainR := e.NewRegion("main", "app.c", 1, 100)
	recvR := e.NewRegion("MPI_Recv", "libmpi", 0, 0)
	root := e.NewCallRoot(e.NewCallSite("", 0, mainR))
	recv := root.NewChild(e.NewCallSite("app.c", 42, recvR))

	for _, th := range e.SingleThreadedSystem("cluster", 2, 4) {
		e.SetSeverity(time, root, th, 1)
		e.SetSeverity(comm, recv, th, 0.5)
		e.SetSeverity(wait, recv, th, waitSec)
	}
	return e
}

func TestPublicWorkflow(t *testing.T) {
	before := buildPublic("before", 0.4)
	after := buildPublic("after", 0.1)
	if err := before.Validate(); err != nil {
		t.Fatal(err)
	}

	d, err := cube.Difference(before, after, nil)
	if err != nil {
		t.Fatal(err)
	}
	wait := d.FindMetricByName("Late Sender")
	if got := d.MetricTotal(wait); math.Abs(got-1.2) > 1e-12 {
		t.Errorf("difference = %v, want 1.2", got)
	}

	m, err := cube.Mean(nil, before, after)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MetricTotal(m.FindMetricByName("Late Sender")); got != 4*0.25 {
		t.Errorf("mean = %v, want 1.0", got)
	}

	// Composite via closure: difference of scaled experiments.
	s, err := cube.Scale(before, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	dd, err := cube.Difference(s, before, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dd.Fingerprint() != before.Fingerprint() {
		t.Errorf("2a - a != a")
	}

	// Min/Max/Sum/MergeAll all exposed.
	if _, err := cube.Min(nil, before, after); err != nil {
		t.Errorf("Min: %v", err)
	}
	if _, err := cube.Max(nil, before, after); err != nil {
		t.Errorf("Max: %v", err)
	}
	if _, err := cube.Sum(nil, before, after); err != nil {
		t.Errorf("Sum: %v", err)
	}
	if _, err := cube.MergeAll(nil, before, after); err != nil {
		t.Errorf("MergeAll: %v", err)
	}
	if _, err := cube.Merge(before, after, nil); err != nil {
		t.Errorf("Merge: %v", err)
	}
}

func TestPublicIO(t *testing.T) {
	e := buildPublic("io", 0.2)
	var buf bytes.Buffer
	if err := cube.Write(&buf, e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<cube") {
		t.Errorf("not a cube document")
	}
	back, err := cube.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != e.Fingerprint() {
		t.Errorf("round-trip mismatch")
	}

	path := filepath.Join(t.TempDir(), "x.cube")
	if err := cube.WriteFile(path, e); err != nil {
		t.Fatal(err)
	}
	back2, err := cube.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back2.Title != "io" {
		t.Errorf("file round-trip lost title")
	}
}

func TestPublicOptions(t *testing.T) {
	a := buildPublic("a", 0.1)
	b := buildPublic("b", 0.2)
	opts := &cube.Options{
		CallMatch:        cube.CallMatchCalleeLine,
		System:           cube.SystemCollapse,
		CollapsedMachine: "flat",
	}
	d, err := cube.Difference(a, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Machines()[0].Name != "flat" {
		t.Errorf("options not honoured: machine %q", d.Machines()[0].Name)
	}
}

func TestPublicNewMetricStandalone(t *testing.T) {
	m := cube.NewMetric("Time", cube.Seconds, "d")
	if m.Name != "Time" || m.Unit != cube.Seconds {
		t.Errorf("NewMetric wrong")
	}
}
