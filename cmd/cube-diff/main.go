// Command cube-diff computes the difference of two CUBE experiments:
//
//	cube-diff [flags] minuend.cube subtrahend.cube
//
// The result is a complete derived experiment (closure property) that can
// be viewed with cube-view or fed into further operations.
//
// The shared profiling flags apply (-cpuprofile, -memprofile, -stats);
// -trace out.json additionally records every operator invocation's span
// tree as Chrome trace-event JSON for Perfetto / chrome://tracing.
package main

import (
	"flag"
	"fmt"
	"os"

	"cube"
	"cube/internal/cli"
)

func main() {
	out := flag.String("o", "diff.cube", "output file")
	callMatch := flag.String("callmatch", "callee", "call-tree equality relation: callee | callee+line")
	system := flag.String("system", "auto", "system integration: auto | collapse | copy-first")
	prof := cli.NewProfile(nil)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cube-diff [flags] minuend.cube subtrahend.cube\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	opts, err := cli.ParseOptions(*callMatch, *system)
	if err != nil {
		cli.Fatal("cube-diff", err)
	}
	stopProf, err := prof.Start("cube-diff")
	if err != nil {
		cli.Fatal("cube-diff", err)
	}
	defer stopProf()
	opts.Event = prof.Event()
	a, err := cube.ReadFile(flag.Arg(0))
	if err != nil {
		cli.Fatal("cube-diff", err)
	}
	b, err := cube.ReadFile(flag.Arg(1))
	if err != nil {
		cli.Fatal("cube-diff", err)
	}
	d, err := cube.Difference(a, b, opts)
	if err != nil {
		cli.Fatal("cube-diff", err)
	}
	if err := cube.WriteFile(*out, d); err != nil {
		cli.Fatal("cube-diff", err)
	}
	fmt.Printf("wrote %s: %s\n", *out, d.Title)
}
