// Command cube-view renders a CUBE experiment — original or derived — as
// the three coupled tree browsers of the CUBE display:
//
//	cube-view [flags] experiment.cube
//
// Values can be shown as absolute numbers, as percentages of the selected
// metric root's total, or normalized with respect to an external total
// (e.g. another experiment's execution time) to simplify comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cube"
	"cube/internal/cli"
	"cube/internal/display"
	"cube/internal/report"
)

func main() {
	metric := flag.String("metric", "", "selected metric (name or root/.../name path; default: first root)")
	metricState := flag.String("metricstate", "collapsed", "selection state of the metric: collapsed (aggregate subtree) | expanded")
	cnode := flag.String("cnode", "", "selected call path (callee/.../callee); default: first call root")
	cnodeState := flag.String("cnodestate", "collapsed", "selection state of the call path: collapsed | expanded")
	mode := flag.String("mode", "absolute", "value mode: absolute | percent | external")
	base := flag.Float64("base", 0, "100% reference for -mode external")
	collapse := flag.String("collapse", "", "comma-separated metric/call paths to render collapsed")
	hideZero := flag.Bool("hidezero", false, "hide subtrees with zero severity")
	flat := flag.Bool("flat", false, "switch the program dimension to the flat-profile view")
	topo := flag.Bool("topology", false, "additionally render the selection over the process topology")
	interactive := flag.Bool("i", false, "interactive browsing session (reads commands from stdin; try 'help')")
	top := flag.Int("top", 0, "additionally list the top N (metric, call path) severities by magnitude")
	htmlOut := flag.String("html", "", "write a self-contained HTML report to this file instead of rendering text")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cube-view [flags] experiment.cube\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	e, err := cube.ReadFile(flag.Arg(0))
	if err != nil {
		cli.Fatal("cube-view", err)
	}
	if *flat {
		if e, err = cube.Flatten(e); err != nil {
			cli.Fatal("cube-view", err)
		}
	}
	if *interactive {
		b, err := display.NewBrowser(e)
		if err != nil {
			cli.Fatal("cube-view", err)
		}
		if err := b.Run(os.Stdin, os.Stdout); err != nil {
			cli.Fatal("cube-view", err)
		}
		return
	}

	sel := display.Selection{
		MetricCollapsed: *metricState == "collapsed",
		CNodeCollapsed:  *cnodeState == "collapsed",
	}
	if *metric != "" {
		if sel.Metric = e.FindMetric(*metric); sel.Metric == nil {
			sel.Metric = e.FindMetricByName(*metric)
		}
		if sel.Metric == nil {
			cli.Fatal("cube-view", fmt.Errorf("metric %q not found", *metric))
		}
	} else if len(e.MetricRoots()) > 0 {
		sel.Metric = e.MetricRoots()[0]
	}
	if *cnode != "" {
		if sel.CNode = e.FindCallNode(*cnode); sel.CNode == nil {
			cli.Fatal("cube-view", fmt.Errorf("call path %q not found", *cnode))
		}
	} else if len(e.CallRoots()) > 0 {
		sel.CNode = e.CallRoots()[0]
	}

	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			cli.Fatal("cube-view", err)
		}
		rerr := report.Write(f, e, &report.Options{Selection: sel, TopN: *top})
		if cerr := f.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			cli.Fatal("cube-view", rerr)
		}
		fmt.Printf("wrote %s\n", *htmlOut)
		return
	}

	cfg := &display.Config{HideZero: *hideZero}
	switch *mode {
	case "absolute":
		cfg.Mode = display.Absolute
	case "percent":
		cfg.Mode = display.Percent
	case "external":
		cfg.Mode = display.External
		cfg.Base = *base
	default:
		cli.Fatal("cube-view", fmt.Errorf("unknown -mode %q", *mode))
	}
	if *collapse != "" {
		cfg.Collapsed = map[string]bool{}
		for _, p := range strings.Split(*collapse, ",") {
			cfg.Collapsed[strings.TrimSpace(p)] = true
		}
	}
	if err := display.Render(os.Stdout, e, sel, cfg); err != nil {
		cli.Fatal("cube-view", err)
	}
	if *topo {
		fmt.Println()
		if err := display.RenderTopology(os.Stdout, e, sel, cfg); err != nil {
			cli.Fatal("cube-view", err)
		}
	}
	if *top > 0 {
		fmt.Println()
		if err := display.RenderHotspots(os.Stdout, e, sel, cfg, *top); err != nil {
			cli.Fatal("cube-view", err)
		}
	}
}
