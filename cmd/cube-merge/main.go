// Command cube-merge integrates two or more CUBE experiments with
// different or overlapping metric sets into one derived experiment:
//
//	cube-merge [flags] a.cube b.cube [c.cube ...]
//
// Metrics provided by several operands are taken from the first one that
// provides them.
//
// The shared profiling flags apply (-cpuprofile, -memprofile, -stats,
// -trace out.json for Chrome trace-event span trees).
package main

import (
	"flag"
	"fmt"
	"os"

	"cube"
	"cube/internal/cli"
)

func main() {
	out := flag.String("o", "merge.cube", "output file")
	callMatch := flag.String("callmatch", "callee", "call-tree equality relation: callee | callee+line")
	system := flag.String("system", "auto", "system integration: auto | collapse | copy-first")
	prof := cli.NewProfile(nil)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cube-merge [flags] a.cube b.cube [c.cube ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 2 {
		flag.Usage()
		os.Exit(2)
	}
	opts, err := cli.ParseOptions(*callMatch, *system)
	if err != nil {
		cli.Fatal("cube-merge", err)
	}
	stopProf, err := prof.Start("cube-merge")
	if err != nil {
		cli.Fatal("cube-merge", err)
	}
	defer stopProf()
	opts.Event = prof.Event()
	operands := make([]*cube.Experiment, 0, flag.NArg())
	for _, path := range flag.Args() {
		e, err := cube.ReadFile(path)
		if err != nil {
			cli.Fatal("cube-merge", err)
		}
		operands = append(operands, e)
	}
	m, err := cube.MergeAll(opts, operands...)
	if err != nil {
		cli.Fatal("cube-merge", err)
	}
	if err := cube.WriteFile(*out, m); err != nil {
		cli.Fatal("cube-merge", err)
	}
	fmt.Printf("wrote %s: %s (%d metric roots)\n", *out, m.Title, len(m.MetricRoots()))
}
