// Command cube-mean averages an arbitrary number of CUBE experiments,
// smoothing the effects of random perturbation across repeated runs or
// summarising across a range of execution parameters:
//
//	cube-mean [flags] run1.cube run2.cube [run3.cube ...]
//
// The shared profiling flags apply (-cpuprofile, -memprofile, -stats,
// -trace out.json for Chrome trace-event span trees).
package main

import (
	"flag"
	"fmt"
	"os"

	"cube"
	"cube/internal/cli"
)

func main() {
	out := flag.String("o", "mean.cube", "output file")
	callMatch := flag.String("callmatch", "callee", "call-tree equality relation: callee | callee+line")
	system := flag.String("system", "auto", "system integration: auto | collapse | copy-first")
	prof := cli.NewProfile(nil)
	useMin := flag.Bool("min", false, "compute the element-wise minimum instead of the mean")
	useMax := flag.Bool("max", false, "compute the element-wise maximum instead of the mean")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cube-mean [flags] run1.cube run2.cube [...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *useMin && *useMax {
		cli.Fatal("cube-mean", fmt.Errorf("-min and -max are mutually exclusive"))
	}
	opts, err := cli.ParseOptions(*callMatch, *system)
	if err != nil {
		cli.Fatal("cube-mean", err)
	}
	stopProf, err := prof.Start("cube-mean")
	if err != nil {
		cli.Fatal("cube-mean", err)
	}
	defer stopProf()
	opts.Event = prof.Event()
	operands := make([]*cube.Experiment, 0, flag.NArg())
	for _, path := range flag.Args() {
		e, err := cube.ReadFile(path)
		if err != nil {
			cli.Fatal("cube-mean", err)
		}
		operands = append(operands, e)
	}
	var m *cube.Experiment
	switch {
	case *useMin:
		m, err = cube.Min(opts, operands...)
	case *useMax:
		m, err = cube.Max(opts, operands...)
	default:
		m, err = cube.Mean(opts, operands...)
	}
	if err != nil {
		cli.Fatal("cube-mean", err)
	}
	if err := cube.WriteFile(*out, m); err != nil {
		cli.Fatal("cube-mean", err)
	}
	fmt.Printf("wrote %s: %s\n", *out, m.Title)
}
