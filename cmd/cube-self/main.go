// Command cube-self works with a cube-server's self-telemetry run
// series — the snapshots the server takes of its own metrics, Go
// runtime estimates, and request-span taxonomy as CUBE experiments
// (cube-server -store-dir ... -self-interval 1m -debug):
//
//	cube-self -addr http://localhost:7654 series
//	cube-self -addr http://localhost:7654 snapshot
//	cube-self -addr http://localhost:7654 diff -o regress.cube
//
// series lists the retained runs with digests; snapshot takes one on
// demand; diff evaluates newer − older server-side with POST /expr
// (by default the newest two runs; -a/-b select runs by sequence
// number) and prints the metric series with the largest absolute
// deltas — the self-observed regression report. -o additionally saves
// the full derived experiment for cube-view / cube-info.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"cube"
	"cube/client"
	"cube/internal/cli"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: cube-self [flags] <verb> [verb flags]

verbs:
  series    list the server's retained self-snapshot runs
  snapshot  take one self-snapshot now and print the new run
  diff      diff two runs server-side (default: newest minus previous)

flags:
`)
	flag.PrintDefaults()
}

func main() {
	addr := flag.String("addr", "http://localhost:7654", "base URL of the cube-server (must run with -debug and a store)")
	timeout := flag.Duration("timeout", 30*time.Second, "wall-clock budget for the whole command")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}

	c := client.New(*addr)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var err error
	switch verb := flag.Arg(0); verb {
	case "series":
		err = runSeries(ctx, c)
	case "snapshot":
		err = runSnapshot(ctx, c)
	case "diff":
		err = runDiff(ctx, c, flag.Args()[1:])
	default:
		fmt.Fprintf(os.Stderr, "cube-self: unknown verb %q\n", verb)
		usage()
		os.Exit(2)
	}
	if err != nil {
		cli.Fatal("cube-self", err)
	}
}

// fetchSeries loads the run series and rejects servers that have
// self-telemetry off, with a hint at the flags that turn it on.
func fetchSeries(ctx context.Context, c *client.Client) (client.SelfSeries, error) {
	s, err := c.SelfSeries(ctx)
	if err != nil {
		return s, err
	}
	if !s.Enabled {
		return s, fmt.Errorf("self-telemetry is off on this server (run cube-server with -store-dir and -self-interval or -self-keep)")
	}
	return s, nil
}

func runSeries(ctx context.Context, c *client.Client) error {
	s, err := fetchSeries(ctx, c)
	if err != nil {
		return err
	}
	fmt.Printf("process %s: %d runs retained\n", s.Process, len(s.Runs))
	for _, r := range s.Runs {
		fmt.Printf("  %6d  %-22s %8dB  %s  %s\n", r.Seq, r.Title, r.Bytes, r.Time, r.Digest)
	}
	return nil
}

func runSnapshot(ctx context.Context, c *client.Client) error {
	run, err := c.SelfSnapshot(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("%6d  %-22s %8dB  %s  %s\n", run.Seq, run.Title, run.Bytes, run.Time, run.Digest)
	return nil
}

func runDiff(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("cube-self diff", flag.ExitOnError)
	newer := fs.Uint64("a", 0, "sequence number of the minuend run (0 = newest)")
	older := fs.Uint64("b", 0, "sequence number of the subtrahend run (0 = the run before -a)")
	out := fs.String("o", "", "also write the derived experiment to this file")
	top := fs.Int("top", 15, "metric series with the largest absolute deltas to print")
	if err := fs.Parse(args); err != nil {
		return err
	}

	s, err := fetchSeries(ctx, c)
	if err != nil {
		return err
	}
	if len(s.Runs) < 2 {
		return fmt.Errorf("need at least 2 retained runs to diff, server has %d", len(s.Runs))
	}
	a, err := pickRun(s.Runs, *newer, s.Runs[len(s.Runs)-1].Seq)
	if err != nil {
		return err
	}
	if *older == 0 && a.Seq == s.Runs[0].Seq {
		return fmt.Errorf("run %d is the oldest retained; pick a minuend with -a", a.Seq)
	}
	b, err := pickRun(s.Runs, *older, a.Seq-1)
	if err != nil {
		return err
	}

	d, err := c.SelfDiff(ctx, a.Digest, b.Digest, nil)
	if err != nil {
		return err
	}
	fmt.Printf("%s − %s\n", a.Title, b.Title)
	printTop(d, *top)
	if *out != "" {
		if err := cube.WriteFile(*out, d); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %s\n", *out, d.Title)
	}
	return nil
}

func pickRun(runs []client.SelfRun, seq, fallback uint64) (client.SelfRun, error) {
	if seq == 0 {
		seq = fallback
	}
	for _, r := range runs {
		if r.Seq == seq {
			return r, nil
		}
	}
	return client.SelfRun{}, fmt.Errorf("run %d is not retained on the server (cube-self series lists what is)", seq)
}

// printTop ranks every metric in the diff by the absolute total of its
// severities — the between-runs delta — and prints the movers. Leaf
// names carry the series labels (route=..., status=...), so the report
// reads directly as "which route/metric moved and by how much".
func printTop(d *cube.Experiment, top int) {
	type mover struct {
		name  string
		unit  string
		delta float64
	}
	var movers []mover
	for _, m := range d.Metrics() {
		if len(m.Children()) > 0 {
			continue // interior family node; the leaves carry the series
		}
		v := d.MetricTotal(m)
		if v == 0 || math.IsNaN(v) {
			continue
		}
		name := m.Name
		if p := m.Parent(); p != nil {
			name = p.Name + "{" + m.Name + "}"
		}
		movers = append(movers, mover{name: name, unit: string(m.Unit), delta: v})
	}
	sort.Slice(movers, func(i, j int) bool {
		ai, aj := math.Abs(movers[i].delta), math.Abs(movers[j].delta)
		if ai != aj {
			return ai > aj
		}
		return movers[i].name < movers[j].name
	})
	if len(movers) == 0 {
		fmt.Println("no metric changed between the runs")
		return
	}
	if top > 0 && len(movers) > top {
		fmt.Printf("top %d of %d changed series:\n", top, len(movers))
		movers = movers[:top]
	} else {
		fmt.Printf("%d changed series:\n", len(movers))
	}
	for _, mv := range movers {
		fmt.Printf("  %+14.6g %-12s %s\n", mv.delta, mv.unit, mv.name)
	}
}
