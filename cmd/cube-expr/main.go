// Command cube-expr evaluates a whole algebra expression DAG on a
// cube-server in one request:
//
//	cube-expr -server http://host:7654 \
//	    -e '{"op":"mean","args":[{"op":"difference","args":[{"ref":"operand:0"},{"ref":"operand:1"}]},{"ref":"operand:0"}]}' \
//	    before.cube after.cube
//
// The expression is JSON (see the README's Expression endpoint section):
// operator nodes over leaves that reference either the local operand
// files given as arguments (`operand:<i>`, uploaded inline) or
// experiments already committed to the server store (`digest:<sha256>`).
// `-f expr.json` reads the expression from a file, `-f -` from stdin.
//
// A `{"defs":{...},"roots":[...]}` document evaluates several
// expressions over one shared DAG in a single request; each root is then
// written to its own file derived from -o (`expr-0.cube`, `expr-1.cube`,
// …), in root order.
//
// The server evaluates each distinct subexpression once and answers
// repeated expressions from its result cache; -stats prints the summary
// the server returns (node count, CSE hits, cache hit).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cube"
	"cube/client"
	"cube/internal/cli"
)

func main() {
	server := flag.String("server", "http://localhost:7654", "cube-server base URL")
	exprSrc := flag.String("e", "", "expression JSON (inline)")
	exprFile := flag.String("f", "", `expression JSON file ("-" = stdin); exclusive with -e`)
	out := flag.String("o", "expr.cube", "output file")
	callMatch := flag.String("callmatch", "", "call-tree equality relation: callee | callee+line (empty = server default)")
	system := flag.String("system", "", "system integration: auto | collapse | copy-first (empty = server default)")
	timeout := flag.Duration("timeout", 2*time.Minute, "whole-call budget, retries included")
	stats := flag.Bool("stats", false, "print the server's evaluation summary to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cube-expr [flags] [operand.cube ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	doc, multi, err := readExpr(*exprSrc, *exprFile)
	if err != nil {
		cli.Fatal("cube-expr", err)
	}
	operands := make([]*cube.Experiment, flag.NArg())
	for i, path := range flag.Args() {
		if operands[i], err = cube.ReadFile(path); err != nil {
			cli.Fatal("cube-expr", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	opts := &client.OpOptions{CallMatch: *callMatch, System: *system}
	if multi {
		results, st, err := client.New(*server).ExprMultiRaw(ctx, doc, opts, operands...)
		if err != nil {
			cli.Fatal("cube-expr", err)
		}
		printStats(*stats, st)
		for i, e := range results {
			path := rootOutPath(*out, i)
			if err := cube.WriteFile(path, e); err != nil {
				cli.Fatal("cube-expr", err)
			}
			fmt.Printf("wrote %s: %s\n", path, e.Title)
		}
		return
	}
	result, st, err := postExpr(ctx, *server, doc, opts, operands)
	if err != nil {
		cli.Fatal("cube-expr", err)
	}
	printStats(*stats, st)
	if err := cube.WriteFile(*out, result); err != nil {
		cli.Fatal("cube-expr", err)
	}
	fmt.Printf("wrote %s: %s\n", *out, result.Title)
}

func printStats(on bool, st client.ExprStats) {
	if !on {
		return
	}
	cached := "miss"
	if st.Cached {
		cached = "hit"
	}
	fmt.Fprintf(os.Stderr, "nodes=%d cse_hits=%d result_cache=%s\n", st.Nodes, st.CSEHits, cached)
}

// rootOutPath derives the i-th output file of a batched expression from
// the -o flag: expr.cube becomes expr-0.cube, expr-1.cube, ….
func rootOutPath(out string, i int) string {
	ext := filepath.Ext(out)
	return fmt.Sprintf("%s-%d%s", strings.TrimSuffix(out, ext), i, ext)
}

// readExpr loads the expression document from -e, -f, or stdin, and
// insists it is at least syntactically JSON before the bytes go on the
// wire — a local error message beats a 400 round trip for typo'd shells.
// multi reports whether the document is the batched `{"roots":[...]}`
// form, which changes the response shape (one experiment per root).
func readExpr(inline, file string) (doc []byte, multi bool, err error) {
	switch {
	case inline != "" && file != "":
		return nil, false, errors.New("-e and -f are exclusive")
	case inline != "":
		doc = []byte(inline)
	case file == "" || file == "-":
		if doc, err = io.ReadAll(os.Stdin); err != nil {
			return nil, false, fmt.Errorf("reading expression from stdin: %w", err)
		}
	default:
		if doc, err = os.ReadFile(file); err != nil {
			return nil, false, err
		}
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(doc, &probe); err != nil {
		return nil, false, fmt.Errorf("expression is not valid JSON: %w", err)
	}
	_, multi = probe["roots"]
	return doc, multi, nil
}

// postExpr sends the raw expression document through the typed client's
// transport (retries, Retry-After, tracing). The document is already
// JSON, so the ExprNode builder would only get in the way here.
func postExpr(ctx context.Context, base string, doc []byte, opts *client.OpOptions, operands []*cube.Experiment) (*cube.Experiment, client.ExprStats, error) {
	return client.New(base).ExprRaw(ctx, doc, opts, operands...)
}
