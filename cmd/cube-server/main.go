// Command cube-server exposes the CUBE algebra as an HTTP service (the
// paper's Grid-service integration, on plain HTTP): clients POST
// experiments in the CUBE XML format and receive derived experiments or
// renderings. Example:
//
//	cube-server -addr :8080 &
//	curl -F operand=@before.cube -F operand=@after.cube \
//	     'http://localhost:8080/op/difference' > diff.cube
//	curl -F operand=@diff.cube 'http://localhost:8080/view?metric=Time&mode=percent'
//
// The server is production-hardened: panic recovery, a weighted
// concurrency limiter (429 + Retry-After when saturated), per-request
// timeouts, upload size and XML structural caps, structured request
// logging, connection timeouts, and graceful shutdown on SIGINT/SIGTERM
// (in-flight requests drain for -drain-timeout before the process exits).
// Every limit has a flag; see -help. The cube/client package is a typed Go
// client with matching retry behavior.
//
// Observability: GET /metrics serves the Prometheus text exposition of the
// request, operator, and codec metrics. -debug opens the /debug/* routes:
// /debug/vars (metrics + memstats as JSON), /debug/pprof/*, /debug/events
// (the wide-event flight recorder as NDJSON — one event per request with
// full resource attribution), /debug/store (experiment-store inventory),
// and /debug/slo (per-route error-budget burn; configure objectives with
// -slo-availability 0.999 and -slo-latency 500ms). Logs are structured
// (-log-format text|json) and every line carries the request ID that is
// also echoed in the X-Request-ID response header. The cube-top command
// renders a live terminal view from these endpoints.
//
// Tracing: -trace-sample 0.1 records span trees (request → operator →
// kernel shards) for a tenth of requests; -trace-slow 2s additionally
// keeps and logs every request slower than two seconds. Retained traces
// are listed at GET /debug/traces and served as Chrome trace-event JSON
// (or ?format=tree text) at GET /debug/traces/{id}, keyed by the
// request's X-Request-ID.
//
// Expressions: POST /expr evaluates a whole algebra DAG server-side in one
// request (JSON body with digest:/operand: leaves; see the README's
// Expression endpoint section). Identical subtrees evaluate once, and
// repeated expressions are answered from an expression-digest result cache
// within -expr-cache-mb; -expr-max-nodes / -expr-max-depth bound accepted
// documents.
//
// Experiment store: -store-dir enables a durable content-addressed store
// (crash-safe writes, corruption quarantine, LRU eviction within
// -store-mb). Clients PUT documents once at /experiments/{sha256} and
// then pass `digest:<sha256>` operand references to any operator; on
// sustained write errors the store degrades to read-only (uploads answer
// 503 + Retry-After, reads and cached compute keep serving, /readyz
// reports the condition) and re-arms automatically once writes succeed
// again. -digest-strict upgrades Content-Digest mismatches on uploads
// from a logged anomaly to a 400 rejection.
//
// Self-telemetry: with -store-dir set, -self-interval 1m makes the server
// snapshot its own metrics, Go runtime estimates, and request-span
// taxonomy as a CUBE experiment every minute, committed to the store
// under the run series self:cube-server:<seq> (the newest -self-keep
// runs stay pinned). GET /debug/self lists the series with digests, GET
// /debug/self/experiment.xml serves the newest snapshot, and POST
// /debug/self/snapshot takes one on demand — so the server's own history
// is analysed with its own algebra:
//
//	cube-diff -server http://localhost:7654 digest:<new> digest:<old>
//
// or any POST /expr DAG over the series. The cube-self command wraps the
// snapshot/series/diff workflow.
package main

import (
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"

	"cube/internal/cli"
	"cube/internal/core"
	"cube/internal/cubexml"
	"cube/internal/obs"
	"cube/internal/server"
	"cube/internal/store"
)

func main() {
	cfg := server.DefaultConfig()
	addr := flag.String("addr", "localhost:7654", "listen address (use :0 to pick a free port)")
	flag.IntVar(&cfg.MaxOperands, "max-operands", cfg.MaxOperands, "max operand files per request (0 = unlimited)")
	flag.Int64Var(&cfg.MaxUploadBytes, "max-upload-bytes", cfg.MaxUploadBytes, "max total request body bytes (0 = unlimited)")
	flag.Int64Var(&cfg.MaxFileBytes, "max-file-bytes", cfg.MaxFileBytes, "max bytes per operand file (0 = unlimited)")
	flag.IntVar(&cfg.MaxConcurrent, "max-concurrent", cfg.MaxConcurrent, "weighted concurrent request slots (0 = unlimited)")
	flag.DurationVar(&cfg.RequestTimeout, "timeout", cfg.RequestTimeout, "wall-clock budget per request (0 = unlimited)")
	flag.DurationVar(&cfg.RetryAfter, "retry-after", cfg.RetryAfter, "Retry-After hint sent with 429 responses")
	flag.IntVar(&cfg.XML.MaxElements, "xml-max-elements", cfg.XML.MaxElements, "max XML elements per operand (0 = unlimited)")
	flag.IntVar(&cfg.XML.MaxDepth, "xml-max-depth", cfg.XML.MaxDepth, "max XML nesting depth per operand (0 = unlimited)")
	flag.DurationVar(&cfg.ReadHeaderTimeout, "read-header-timeout", cfg.ReadHeaderTimeout, "time to read request headers")
	flag.DurationVar(&cfg.ReadTimeout, "read-timeout", cfg.ReadTimeout, "time to read a full request")
	flag.DurationVar(&cfg.WriteTimeout, "write-timeout", cfg.WriteTimeout, "time to write a full response")
	flag.DurationVar(&cfg.IdleTimeout, "idle-timeout", cfg.IdleTimeout, "keep-alive idle connection timeout")
	flag.DurationVar(&cfg.DrainTimeout, "drain-timeout", cfg.DrainTimeout, "grace period for in-flight requests on shutdown")
	flag.BoolVar(&cfg.Debug, "debug", false,
		"expose the /debug/* routes: pprof, vars, events, store, slo, traces")
	flag.BoolVar(&cfg.EnablePprof, "pprof", false, "deprecated synonym for -debug")
	flag.Float64Var(&cfg.TraceSampleRate, "trace-sample", 0, "fraction of requests to trace [0, 1]; enables /debug/traces")
	flag.DurationVar(&cfg.TraceSlow, "trace-slow", 0, "also trace and log every request at least this slow (0 = off)")
	flag.IntVar(&cfg.EventRingSize, "event-ring", 0,
		"wide events retained for /debug/events (0 = default 1024)")
	flag.DurationVar(&cfg.SLOLatency, "slo-latency", 0,
		"latency SLO threshold; with -slo-latency-target, tracks the fraction of slow requests (0 = off)")
	flag.Float64Var(&cfg.SLOLatencyTarget, "slo-latency-target", 0,
		"fraction of requests that must beat -slo-latency (0 = default 0.99)")
	flag.Float64Var(&cfg.SLOAvailability, "slo-availability", 0,
		"availability SLO target, e.g. 0.999 = at most 1 in 1000 requests 5xx (0 = off)")
	flag.DurationVar(&cfg.SLOWindow, "slo-window", 0, "sliding window for SLO burn tracking (0 = default 5m)")
	parseCacheMB := flag.Int64("parse-cache-mb", cfg.ParseCacheBytes>>20,
		"byte budget (MiB) of the content-addressed operand parse cache (0 = disabled)")
	exprCacheMB := flag.Int64("expr-cache-mb", cfg.ExprCacheBytes>>20,
		"byte budget (MiB) of the expression-digest result cache behind POST /expr (0 = disabled)")
	integrateMemoMB := flag.Int64("integrate-memo-mb", core.DefaultIntegrateMemoBytes>>20,
		"byte budget (MiB) of the process-wide integration memo — cached metadata merge plans keyed by operand digests (0 = disabled)")
	flag.IntVar(&cfg.MaxExprNodes, "expr-max-nodes", cfg.MaxExprNodes,
		"max nodes per expression document (0 = default 1024)")
	flag.IntVar(&cfg.MaxExprDepth, "expr-max-depth", cfg.MaxExprDepth,
		"max operator nesting depth per expression (0 = default 64)")
	storeDir := flag.String("store-dir", "",
		"directory of the durable content-addressed experiment store (empty = disabled)")
	storeMB := flag.Int64("store-mb", 1024,
		"byte budget (MiB) of the experiment store; LRU eviction above it (0 = unlimited)")
	flag.DurationVar(&cfg.SelfInterval, "self-interval", 0,
		"period between self-telemetry snapshots committed to the store (0 = off; needs -store-dir)")
	flag.IntVar(&cfg.SelfKeep, "self-keep", 0,
		"self-telemetry runs kept pinned in the store (0 = default 32)")
	flag.BoolVar(&cfg.DigestStrict, "digest-strict", false,
		"reject uploads whose Content-Digest header mismatches the received bytes (default: log and count only)")
	readEngine := flag.String("read-engine", "auto", "CUBE XML parser: auto | fast | legacy")
	logFormat := flag.String("log-format", "text", "structured log format: text | json")
	flag.Parse()
	cfg.ParseCacheBytes = *parseCacheMB << 20
	cfg.ExprCacheBytes = *exprCacheMB << 20
	core.SetIntegrateMemoBudget(*integrateMemoMB << 20)
	var err error
	if cfg.ReadEngine, err = cubexml.ParseReadEngine(*readEngine); err != nil {
		cli.Fatal("cube-server", err)
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		cli.Fatal("cube-server", errors.New("unknown -log-format (want text or json)"))
	}
	logger := slog.New(handler)
	cfg.Logger = logger

	// One wide-event sink for the whole process, created before the store
	// opens so its recovery and lifecycle events land in the same ring
	// the requests do (NewHandler installs it as the process-wide seam).
	cfg.Events = obs.NewEventSink(cfg.EventRingSize)

	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{
			Budget:  *storeMB << 20,
			Logger:  logger,
			Metrics: obs.Default,
			Events:  cfg.Events,
		})
		if err != nil {
			cli.Fatal("cube-server", err)
		}
		cfg.Store = st
		logger.Info("experiment store open",
			slog.String("dir", *storeDir),
			slog.Int("blobs", st.Len()),
			slog.Int64("bytes", st.Bytes()),
			slog.Int("quarantined", st.Recovery.Quarantined))
	}

	// Validated after the store opens: the self-telemetry flags need
	// Config.Store to judge -self-interval/-self-keep without -store-dir.
	if err := cfg.Validate(); err != nil {
		cli.Fatal("cube-server", err)
	}

	// Bind before logging so the address printed is the one actually
	// serving (and :0 reports the kernel-chosen port).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cli.Fatal("cube-server", err)
	}
	logger.Info("cube-server listening", slog.String("url", "http://"+ln.Addr().String()))

	ctx, stop := cli.SignalContext()
	defer stop()
	if err := server.Serve(ctx, ln, cfg); err != nil && !errors.Is(err, http.ErrServerClosed) {
		cli.Fatal("cube-server", err)
	}
	logger.Info("cube-server: shutdown complete")
}
