// Command cube-server exposes the CUBE algebra as an HTTP service (the
// paper's Grid-service integration, on plain HTTP): clients POST
// experiments in the CUBE XML format and receive derived experiments or
// renderings. Example:
//
//	cube-server -addr :8080 &
//	curl -F operand=@before.cube -F operand=@after.cube \
//	     'http://localhost:8080/op/difference' > diff.cube
//	curl -F operand=@diff.cube 'http://localhost:8080/view?metric=Time&mode=percent'
package main

import (
	"flag"
	"log"
	"net/http"

	"cube/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:7654", "listen address")
	flag.Parse()
	log.Printf("cube-server listening on %s", *addr)
	srv := &http.Server{Addr: *addr, Handler: server.Handler()}
	log.Fatal(srv.ListenAndServe())
}
