package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cube/internal/promtext"
)

const metricsT0 = `cube_http_requests_total{method="POST",route="/op/{op}",status="200"} 100
cube_http_requests_total{method="POST",route="/op/{op}",status="500"} 2
cube_http_in_flight_requests 1
cube_parse_cache_hits_total 40
cube_parse_cache_misses_total 10
cube_parse_cache_bytes 2097152
cube_http_request_duration_seconds_bucket{route="/op/{op}",le="0.01"} 50
cube_http_request_duration_seconds_bucket{route="/op/{op}",le="0.1"} 100
cube_http_request_duration_seconds_bucket{route="/op/{op}",le="+Inf"} 102
`

const metricsT1 = `cube_http_requests_total{method="POST",route="/op/{op}",status="200"} 120
cube_http_requests_total{method="POST",route="/op/{op}",status="500"} 3
cube_http_in_flight_requests 2
cube_parse_cache_hits_total 58
cube_parse_cache_misses_total 12
cube_parse_cache_bytes 2097152
cube_http_request_duration_seconds_bucket{route="/op/{op}",le="0.01"} 60
cube_http_request_duration_seconds_bucket{route="/op/{op}",le="0.1"} 121
cube_http_request_duration_seconds_bucket{route="/op/{op}",le="+Inf"} 123
`

const sloBody = `{"enabled":true,"window":"5m0s","availability_target":0.999,
"routes":[{"route":"/op/{op}","total":123,"errors":3,"availability_burn":24.39,
"slow":0,"latency_burn":0,"budget_remaining":0}]}`

const storeBody = `{"enabled":true,"blobs":7,"bytes":1048576,"budget":10485760,
"pressure":0.1,"pins":1,"degraded":true,"degraded_reason":"disk full",
"puts":9,"gets":40,"get_misses":2,"evictions":1,"quarantined":[{}]}`

func testServer(metrics string, debug bool) *httptest.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(metrics))
	})
	if debug {
		mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte(sloBody))
		})
		mux.HandleFunc("/debug/store", func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte(storeBody))
		})
	}
	return httptest.NewServer(mux)
}

func mustPoll(t *testing.T, url string) *sample {
	t.Helper()
	s, err := poll(http.DefaultClient, url)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRenderDeltaFrame drives poll + delta + render across two scrapes
// and checks the numbers a live frame shows describe the interval, not
// the process lifetime.
func TestRenderDeltaFrame(t *testing.T) {
	srv0 := testServer(metricsT0, true)
	prev := mustPoll(t, srv0.URL)
	srv0.Close()
	srv1 := testServer(metricsT1, true)
	defer srv1.Close()
	cur := mustPoll(t, srv1.URL)
	cur.at = prev.at.Add(10 * time.Second)

	var sb strings.Builder
	render(&sb, prev, cur, 10*time.Second, "")
	frame := sb.String()

	for _, w := range []string{
		"last 10s",
		"2.1/s", // 21 requests in the interval / 10s roll-up
		"in-flight 2",
		"4.8%",      // 1 new 5xx of 21
		"hit 90.0%", // 18 of 20 new cache lookups hit
		"resident 2.0MiB",
		"7 blobs",
		"(10% pressure)",
		"DEGRADED (read-only): disk full",
		"quarantined 1",
		"availability 0.999",
		"burn avail 24.390",
		"budget 0.0%",
	} {
		if !strings.Contains(frame, w) {
			t.Errorf("frame missing %q:\n%s", w, frame)
		}
	}

	// Interval latency quantiles: the delta histogram has 10 obs <=10ms
	// and 21 more <=100ms, so p50 interpolates inside the second bucket.
	p50, ok := delta(prev.metrics, cur.metrics).
		Quantile("cube_http_request_duration_seconds", 0.5, map[string]string{"route": "/op/{op}"})
	if !ok || p50 < 0.01 || p50 > 0.1 {
		t.Errorf("interval p50 = %v, %v; want inside (0.01, 0.1)", p50, ok)
	}
}

// TestRenderOnceFrame pins -once behavior: totals, no rates.
func TestRenderOnceFrame(t *testing.T) {
	srv := testServer(metricsT0, true)
	defer srv.Close()
	cur := mustPoll(t, srv.URL)
	var sb strings.Builder
	render(&sb, nil, cur, 0, "")
	frame := sb.String()
	for _, w := range []string{"totals since start", "102 req", "hit 80.0%"} {
		if !strings.Contains(frame, w) {
			t.Errorf("once frame missing %q:\n%s", w, frame)
		}
	}
}

// TestRenderWithoutDebug: gated /debug endpoints degrade to footer notes,
// the metrics sections still render.
func TestRenderWithoutDebug(t *testing.T) {
	srv := testServer(metricsT0, false)
	defer srv.Close()
	cur := mustPoll(t, srv.URL)
	if cur.slo != nil || cur.store != nil {
		t.Fatalf("expected nil slo/store docs, got %+v %+v", cur.slo, cur.store)
	}
	if len(cur.notes) != 2 {
		t.Fatalf("notes = %v, want two degradation notes", cur.notes)
	}
	var sb strings.Builder
	render(&sb, nil, cur, 0, "")
	frame := sb.String()
	for _, w := range []string{"slo       (unavailable)", "store     (unavailable)", "/op/{op}"} {
		if !strings.Contains(frame, w) {
			t.Errorf("frame missing %q:\n%s", w, frame)
		}
	}
}

// TestRenderStaleBanner: a re-rendered frame after a failed poll must
// announce itself as stale instead of letting old numbers pass as live.
func TestRenderStaleBanner(t *testing.T) {
	srv := testServer(metricsT0, true)
	defer srv.Close()
	cur := mustPoll(t, srv.URL)
	var sb strings.Builder
	render(&sb, nil, cur, 0, "last scrape 6s ago: connection refused")
	frame := sb.String()
	for _, w := range []string{
		"** STALE DATA — last scrape 6s ago: connection refused; retrying **",
		"/op/{op}", // the old frame still renders under the banner
	} {
		if !strings.Contains(frame, w) {
			t.Errorf("stale frame missing %q:\n%s", w, frame)
		}
	}
	var live strings.Builder
	render(&live, nil, cur, 0, "")
	if strings.Contains(live.String(), "STALE") {
		t.Error("live frame carries a stale banner")
	}
}

// TestFirstSampleRetries: a server that is not up yet is a wait-and-note,
// not an exit — except under -once, which stays fail-fast for scripts.
func TestFirstSampleRetries(t *testing.T) {
	var calls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, "starting up", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(metricsT0))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var notes strings.Builder
	s, err := firstSample(http.DefaultClient, srv.URL, time.Millisecond, false, &notes)
	if err != nil || s == nil {
		t.Fatalf("firstSample = %v, %v; want a sample after retries", s, err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("scrape attempts = %d, want 3", got)
	}
	if n := strings.Count(notes.String(), "waiting for first scrape"); n != 2 {
		t.Errorf("stderr notes = %d, want 2:\n%s", n, notes.String())
	}

	// -once against a still-failing server: first error straight back.
	calls.Store(-100)
	if _, err := firstSample(http.DefaultClient, srv.URL, time.Millisecond, true, io.Discard); err == nil {
		t.Error("fail-fast firstSample returned nil error from a 503 server")
	}
}

// TestDeltaClampsCounterReset: a restarted server must read as a small
// fresh-baseline interval (the increments since the restart), never a
// negative rate.
func TestDeltaClampsCounterReset(t *testing.T) {
	prev, _ := promtext.Parse(strings.NewReader(`c{a="x"} 100` + "\n"))
	cur, _ := promtext.Parse(strings.NewReader(`c{a="x"} 5` + "\n" + `c{a="y"} 3` + "\n"))
	d := delta(prev, cur)
	if got := d.Sum("c", map[string]string{"a": "x"}); got != 5 {
		t.Errorf("reset counter delta = %v, want fresh baseline 5", got)
	}
	if got := d.Sum("c", map[string]string{"a": "y"}); got != 3 {
		t.Errorf("new series delta = %v, want pass-through 3", got)
	}
}
