// Command cube-top renders a live terminal operations view of a running
// cube-server, in the spirit of top(1): request rates and latency
// quantiles per route, parse-cache effectiveness, experiment-store
// pressure, and SLO error-budget burn.
//
//	cube-top -addr http://localhost:7654
//
// It polls GET /metrics (always on), and GET /debug/slo and
// GET /debug/store (available when the server runs with -debug); the
// sections for endpoints that are gated off or unreachable degrade to a
// note rather than an error. Rates and latency quantiles are computed
// from the delta between successive scrapes, so the numbers describe the
// last -interval, not the process lifetime. -once prints a single frame
// from cumulative counters and exits (useful in scripts and for
// snapshotting an incident).
//
// cube-top outlives the server it watches: before the first successful
// scrape it waits and retries (a note per attempt on stderr), and when a
// later scrape fails it keeps the last good frame on screen under a
// "STALE DATA" banner and keeps retrying every -interval until the
// server answers again. Only -once fails fast.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"cube/internal/promtext"
)

// sloDoc mirrors the /debug/slo response (server events.go): an enabled
// flag wrapping obs.SLOSnapshot.
type sloDoc struct {
	Enabled            bool    `json:"enabled"`
	Window             string  `json:"window"`
	AvailabilityTarget float64 `json:"availability_target"`
	LatencyThresholdMS float64 `json:"latency_threshold_ms"`
	LatencyTarget      float64 `json:"latency_target"`
	Routes             []struct {
		Route            string  `json:"route"`
		Total            int64   `json:"total"`
		Errors           int64   `json:"errors"`
		AvailabilityBurn float64 `json:"availability_burn"`
		Slow             int64   `json:"slow"`
		LatencyBurn      float64 `json:"latency_burn"`
		BudgetRemaining  float64 `json:"budget_remaining"`
	} `json:"routes"`
}

// storeDoc mirrors /debug/store: an enabled flag wrapping store.Inventory.
type storeDoc struct {
	Enabled        bool    `json:"enabled"`
	Blobs          int     `json:"blobs"`
	Bytes          int64   `json:"bytes"`
	Budget         int64   `json:"budget"`
	Pressure       float64 `json:"pressure"`
	Pins           int     `json:"pins"`
	Degraded       bool    `json:"degraded"`
	DegradedReason string  `json:"degraded_reason"`
	Puts           int64   `json:"puts"`
	Gets           int64   `json:"gets"`
	GetMisses      int64   `json:"get_misses"`
	Evictions      int64   `json:"evictions"`
	Quarantined    []any   `json:"quarantined"`
}

// sample is one scrape of everything cube-top watches.
type sample struct {
	at      time.Time
	metrics promtext.Metrics
	slo     *sloDoc   // nil when the endpoint was unreachable or gated
	store   *storeDoc // likewise
	notes   []string  // per-endpoint degradation notes for the footer
}

func main() {
	addr := flag.String("addr", "http://localhost:7654", "base URL of the cube-server to watch")
	interval := flag.Duration("interval", 2*time.Second, "poll and redraw period")
	once := flag.Bool("once", false, "print one frame from cumulative counters and exit")
	flag.Parse()
	base := strings.TrimRight(*addr, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	cur, err := firstSample(client, base, *interval, *once, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cube-top: %v\n", err)
		os.Exit(1)
	}
	if *once {
		render(os.Stdout, nil, cur, 0, "")
		return
	}
	prev := cur
	for {
		time.Sleep(*interval)
		next, err := poll(client, base)
		// Clear and home before each frame, like top(1).
		fmt.Print("\x1b[2J\x1b[H")
		if err != nil {
			// Transient scrape failure (server restarting, network blip):
			// keep the last good frame on screen under a STALE banner and
			// keep retrying, instead of tearing the display or exiting.
			render(os.Stdout, prev, cur, cur.at.Sub(prev.at),
				fmt.Sprintf("last scrape %s ago: %v", time.Since(cur.at).Round(time.Second), err))
			continue
		}
		render(os.Stdout, cur, next, next.at.Sub(cur.at), "")
		prev, cur = cur, next
	}
}

// firstSample polls until the first scrape succeeds — cube-top is often
// started before or alongside the server it watches, so a refused
// connection at startup is a note and a retry, not an exit. failFast
// (the -once path) returns the first error instead, keeping scripts
// deterministic.
func firstSample(client *http.Client, base string, interval time.Duration, failFast bool, errw io.Writer) (*sample, error) {
	for {
		s, err := poll(client, base)
		if err == nil {
			return s, nil
		}
		if failFast {
			return nil, err
		}
		fmt.Fprintf(errw, "cube-top: waiting for first scrape: %v\n", err)
		time.Sleep(interval)
	}
}

// poll scrapes the three endpoints. A failed /metrics is fatal to the
// sample (nothing to show without it); the debug endpoints degrade to
// footer notes because they are legitimately absent without -debug.
func poll(client *http.Client, base string) (*sample, error) {
	s := &sample{at: time.Now()}
	body, err := fetch(client, base+"/metrics")
	if err != nil {
		return nil, err
	}
	if s.metrics, err = promtext.Parse(strings.NewReader(body)); err != nil {
		return nil, err
	}
	if body, err = fetch(client, base+"/debug/slo"); err != nil {
		s.notes = append(s.notes, "slo: "+err.Error())
	} else {
		var doc sloDoc
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			s.notes = append(s.notes, "slo: "+err.Error())
		} else {
			s.slo = &doc
		}
	}
	if body, err = fetch(client, base+"/debug/store"); err != nil {
		s.notes = append(s.notes, "store: "+err.Error())
	} else {
		var doc storeDoc
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			s.notes = append(s.notes, "store: "+err.Error())
		} else {
			s.store = &doc
		}
	}
	return s, nil
}

func fetch(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s (is the server running with -debug?)", url, resp.Status)
	}
	return string(body), nil
}

// delta is the scrape-interval view: promtext.Delta handles the
// sample-by-sample subtraction and treats a counter reset (server
// restart) as a fresh baseline for the whole series group, so a restart
// shows as a small honest interval instead of negative rates or a torn
// histogram.
func delta(prev, cur promtext.Metrics) promtext.Metrics {
	return promtext.Delta(prev, cur)
}

// render writes one frame. With prev == nil (the -once path) counters
// are cumulative and rates are omitted; otherwise counters are deltas
// over the given interval. A non-empty stale reason means the frame is
// a re-render of the last good scrape after a poll failure; the banner
// says so instead of letting old numbers pass as current.
func render(w io.Writer, prev *sample, cur *sample, interval time.Duration, stale string) {
	m := cur.metrics
	mode := "totals since start"
	if prev != nil {
		m = delta(prev.metrics, cur.metrics)
		mode = fmt.Sprintf("last %s", interval.Round(time.Millisecond))
	}

	fmt.Fprintf(w, "cube-top  %s  (%s)\n", cur.at.Format(time.RFC3339), mode)
	if stale != "" {
		fmt.Fprintf(w, "** STALE DATA — %s; retrying **\n", stale)
	}
	fmt.Fprintln(w)

	// Requests: one roll-up line, then a per-route table.
	total := m.Sum("cube_http_requests_total", nil)
	bad := m.Sum("cube_http_requests_total", map[string]string{"status": "500"}) +
		m.Sum("cube_http_requests_total", map[string]string{"status": "502"}) +
		m.Sum("cube_http_requests_total", map[string]string{"status": "503"})
	inFlight, _ := cur.metrics.Value("cube_http_in_flight_requests", nil)
	fmt.Fprintf(w, "requests  %s  in-flight %.0f  5xx %s\n",
		rate(total, interval), inFlight, percent(bad, total))

	routes := m.LabelValues("cube_http_requests_total", "route")
	if len(routes) > 0 {
		fmt.Fprintf(w, "  %-22s %10s %9s %9s %7s\n", "ROUTE", "REQ", "P50", "P99", "5XX%")
		for _, route := range routes {
			sel := map[string]string{"route": route}
			n := m.Sum("cube_http_requests_total", sel)
			if n == 0 {
				continue
			}
			b := m.Sum("cube_http_requests_total", map[string]string{"route": route, "status": "500"}) +
				m.Sum("cube_http_requests_total", map[string]string{"route": route, "status": "502"}) +
				m.Sum("cube_http_requests_total", map[string]string{"route": route, "status": "503"})
			p50, _ := m.Quantile("cube_http_request_duration_seconds", 0.5, sel)
			p99, _ := m.Quantile("cube_http_request_duration_seconds", 0.99, sel)
			fmt.Fprintf(w, "  %-22s %10s %9s %9s %7s\n",
				route, rate(n, interval), latency(p50), latency(p99), percent(b, n))
		}
	}

	// Parse cache.
	hits := m.Sum("cube_parse_cache_hits_total", nil)
	misses := m.Sum("cube_parse_cache_misses_total", nil)
	bytes, _ := cur.metrics.Value("cube_parse_cache_bytes", nil)
	fmt.Fprintf(w, "\ncache     hit %s  (%.0f hit / %.0f miss)  resident %s\n",
		percent(hits, hits+misses), hits, misses, size(int64(bytes)))

	// Store.
	switch st := cur.store; {
	case st == nil:
		fmt.Fprintf(w, "store     (unavailable)\n")
	case !st.Enabled:
		fmt.Fprintf(w, "store     disabled\n")
	default:
		budget := "unlimited"
		if st.Budget > 0 {
			budget = fmt.Sprintf("%s (%.0f%% pressure)", size(st.Budget), st.Pressure*100)
		}
		fmt.Fprintf(w, "store     %d blobs  %s of %s  pins %d  puts %d  gets %d (%d miss)  evictions %d  quarantined %d\n",
			st.Blobs, size(st.Bytes), budget, st.Pins, st.Puts, st.Gets, st.GetMisses, st.Evictions, len(st.Quarantined))
		if st.Degraded {
			fmt.Fprintf(w, "          DEGRADED (read-only): %s\n", st.DegradedReason)
		}
	}

	// SLO budgets.
	switch slo := cur.slo; {
	case slo == nil:
		fmt.Fprintf(w, "slo       (unavailable)\n")
	case !slo.Enabled:
		fmt.Fprintf(w, "slo       no objectives configured (-slo-availability / -slo-latency)\n")
	default:
		var objectives []string
		if slo.AvailabilityTarget > 0 {
			objectives = append(objectives, fmt.Sprintf("availability %.4g", slo.AvailabilityTarget))
		}
		if slo.LatencyThresholdMS > 0 {
			objectives = append(objectives, fmt.Sprintf("latency %.4g of requests < %s",
				slo.LatencyTarget, latency(slo.LatencyThresholdMS/1000)))
		}
		fmt.Fprintf(w, "slo       window %s  %s\n", slo.Window, strings.Join(objectives, "  "))
		rs := slo.Routes
		sort.Slice(rs, func(i, j int) bool { return rs[i].BudgetRemaining < rs[j].BudgetRemaining })
		for _, r := range rs {
			fmt.Fprintf(w, "  %-22s total %-7d burn avail %.3f / latency %.3f  budget %s\n",
				r.Route, r.Total, r.AvailabilityBurn, r.LatencyBurn, percent(r.BudgetRemaining*100, 100))
		}
	}

	for _, note := range cur.notes {
		fmt.Fprintf(w, "\n! %s\n", note)
	}
}

// rate formats a count as a per-second rate when an interval is known,
// or as a plain total in -once mode.
func rate(n float64, interval time.Duration) string {
	if interval <= 0 {
		return fmt.Sprintf("%.0f req", n)
	}
	return fmt.Sprintf("%.1f/s", n/interval.Seconds())
}

func percent(part, whole float64) string {
	if whole == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*part/whole)
}

func latency(seconds float64) string {
	switch {
	case seconds <= 0:
		return "-"
	case seconds < 1:
		return fmt.Sprintf("%.1fms", seconds*1000)
	default:
		return fmt.Sprintf("%.2fs", seconds)
	}
}

func size(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
