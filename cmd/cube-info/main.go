// Command cube-info summarises CUBE experiment files. With one argument it
// prints the experiment's provenance, dimension sizes, and per-root metric
// totals; with two arguments it additionally reports the structural
// relation between the two metadata sets (shared and unique metrics, call
// paths, and ranks), helping judge whether an arithmetic operator across
// them is meaningful:
//
//	cube-info run.cube
//	cube-info before.cube after.cube
package main

import (
	"flag"
	"fmt"
	"os"

	"cube"
	"cube/internal/cli"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cube-info a.cube [b.cube]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 || flag.NArg() > 2 {
		flag.Usage()
		os.Exit(2)
	}
	// ReadFileInfo streams the severity statistics instead of building the
	// severity store, so summarising a multi-gigabyte experiment costs its
	// metadata plus one scan.
	a, err := cube.ReadFileInfo(flag.Arg(0))
	if err != nil {
		cli.Fatal("cube-info", err)
	}
	describe(flag.Arg(0), a)

	if flag.NArg() == 2 {
		b, err := cube.ReadFileInfo(flag.Arg(1))
		if err != nil {
			cli.Fatal("cube-info", err)
		}
		fmt.Println()
		describe(flag.Arg(1), b)
		rep, err := cube.StructuralDiff(a.Experiment, b.Experiment, nil)
		if err != nil {
			cli.Fatal("cube-info", err)
		}
		fmt.Printf("\nstructural comparison:\n%s", rep.Summary())
	}
}

func describe(path string, info *cube.Info) {
	e := info.Experiment
	fmt.Printf("%s: %q\n", path, e.Title)
	if e.Derived {
		fmt.Printf("  derived by %q from %v\n", e.Operation, e.Parents)
	}
	fmt.Printf("  metrics: %d (%d roots)   call paths: %d (%d roots)\n",
		len(e.Metrics()), len(e.MetricRoots()), len(e.CallNodes()), len(e.CallRoots()))
	procs := e.Processes()
	fmt.Printf("  system: %d machines, %d processes, %d threads\n",
		len(e.Machines()), len(procs), len(e.Threads()))
	fmt.Printf("  non-zero severity tuples: %d\n", info.NonZero)
	for _, root := range e.MetricRoots() {
		total := 0.0
		root.Walk(func(m *cube.Metric) { total += info.MetricTotal[m] })
		fmt.Printf("  %-28s total %g %s\n", root.Name, total, root.Unit)
	}
}
