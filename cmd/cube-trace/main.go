// Command cube-trace inspects binary event traces (the EPILOG-like format
// written by cube-gen -trace):
//
//	cube-trace stats run.epgo          # header, record mix, sizes
//	cube-trace validate run.epgo       # structural checks
//	cube-trace dump -n 20 run.epgo     # first records, human-readable
//	cube-trace matrix run.epgo         # p2p communication matrix
//	cube-trace analyze -o out.cube run.epgo   # run the EXPERT analyzer
package main

import (
	"flag"
	"fmt"
	"os"

	"cube"
	"cube/internal/cli"
	"cube/internal/expert"
	"cube/internal/trace"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cube-trace <stats|validate|dump|analyze> [flags] trace.epgo\n")
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	args := flag.Args()[1:]
	switch cmd {
	case "stats":
		withTrace(args, func(tr *trace.Trace, _ []string) {
			s := tr.ComputeStats()
			fmt.Printf("program: %q   ranks: %d   counters: %v\n", tr.Program, tr.NumRanks, tr.Counters)
			fmt.Printf("regions: %d\n", len(tr.Regions))
			fmt.Printf("events: %d (enter %d, exit %d, send %d, recv %d, collective exits %d)\n",
				s.Events, s.Enters, s.Exits, s.Sends, s.Recvs, s.Collectives)
			fmt.Printf("duration: %.6fs   encoded size: %d bytes\n", s.Duration, s.EncodedBytes)
			fmt.Printf("threads per rank: %v\n", tr.ThreadsPerRank())
		})
	case "validate":
		withTrace(args, func(tr *trace.Trace, _ []string) {
			if err := tr.Validate(); err != nil {
				cli.Fatal("cube-trace", err)
			}
			fmt.Printf("%d events: structurally valid\n", len(tr.Events))
		})
	case "dump":
		fs := flag.NewFlagSet("dump", flag.ExitOnError)
		n := fs.Int("n", 20, "number of records to print")
		withTraceFS(fs, args, func(tr *trace.Trace, _ []string) {
			for i, ev := range tr.Events {
				if i >= *n {
					fmt.Printf("... %d more\n", len(tr.Events)-*n)
					break
				}
				switch ev.Kind {
				case trace.Enter, trace.Exit:
					extra := ""
					if ev.Coll != trace.CollNone {
						extra = fmt.Sprintf(" coll=%v seq=%d", ev.Coll, ev.CollSeq)
					}
					fmt.Printf("%12.6f r%d.%d %-5v %s%s\n", ev.Time, ev.Rank, ev.Thread, ev.Kind, tr.RegionName(ev.Region), extra)
				default:
					fmt.Printf("%12.6f r%d.%d %-5v partner=%d tag=%d bytes=%d\n",
						ev.Time, ev.Rank, ev.Thread, ev.Kind, ev.Partner, ev.Tag, ev.Bytes)
				}
			}
		})
	case "matrix":
		fs := flag.NewFlagSet("matrix", flag.ExitOnError)
		byBytes := fs.Bool("bytes", false, "scale by transferred bytes instead of message counts")
		withTraceFS(fs, args, func(tr *trace.Trace, _ []string) {
			if err := tr.BuildCommMatrix().Render(os.Stdout, *byBytes); err != nil {
				cli.Fatal("cube-trace", err)
			}
		})
	case "analyze":
		fs := flag.NewFlagSet("analyze", flag.ExitOnError)
		out := fs.String("o", "out.cube", "output experiment file")
		machine := fs.String("machine", "cluster", "machine name")
		nodes := fs.Int("nodes", 1, "number of SMP nodes")
		withTraceFS(fs, args, func(tr *trace.Trace, _ []string) {
			e, err := expert.Analyze(tr, &expert.Options{Machine: *machine, Nodes: *nodes})
			if err != nil {
				cli.Fatal("cube-trace", err)
			}
			if err := cube.WriteFile(*out, e); err != nil {
				cli.Fatal("cube-trace", err)
			}
			fmt.Printf("wrote %s (%d metrics, %d call paths)\n", *out, len(e.Metrics()), len(e.CallNodes()))
		})
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func withTrace(args []string, fn func(*trace.Trace, []string)) {
	if len(args) != 1 {
		flag.Usage()
		os.Exit(2)
	}
	tr, err := trace.ReadFile(args[0])
	if err != nil {
		cli.Fatal("cube-trace", err)
	}
	fn(tr, nil)
}

func withTraceFS(fs *flag.FlagSet, args []string, fn func(*trace.Trace, []string)) {
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	tr, err := trace.ReadFile(fs.Arg(0))
	if err != nil {
		cli.Fatal("cube-trace", err)
	}
	fn(tr, nil)
}
