// Command cube-gen runs a synthetic workload on the MPI simulator, feeds
// it through a measurement tool — the EXPERT-like trace analyzer or the
// CONE-like call-graph profiler — and writes the resulting experiment(s) in
// CUBE XML format:
//
//	cube-gen -app pescan -barriers -tool expert -o before.cube
//	cube-gen -app pescan -tool expert -o after.cube
//	cube-gen -app sweep3d -tool cone -events PAPI_FP_INS,PAPI_L1_DCM -o prof.cube
//
// With -runs N and -mean the tool performs N perturbed runs and writes
// their element-wise mean (the paper's recipe for smoothing random errors
// before further processing). With -tool cone and conflicting events the
// necessary number of measurement runs is planned automatically and one
// file per event set is written (suffix -set0, -set1, ...).
package main

import (
	"flag"
	"fmt"
	"strings"

	"cube"
	"cube/internal/apps"
	"cube/internal/cli"
	"cube/internal/cone"
	"cube/internal/counters"
	"cube/internal/expert"
	"cube/internal/mpisim"
)

func main() {
	app := flag.String("app", "pescan", "workload: pescan | sweep3d | hybrid | masterworker")
	barriers := flag.Bool("barriers", false, "pescan: original version with barriers")
	np := flag.Int("np", 16, "number of processes")
	nodes := flag.Int("nodes", 4, "number of SMP nodes")
	threads := flag.Int("threads", 4, "hybrid: OpenMP threads per process")
	seed := flag.Int64("seed", 1, "simulation seed")
	noise := flag.Float64("noise", 0.02, "compute-phase noise amplitude (fraction)")
	tool := flag.String("tool", "expert", "measurement tool: expert | cone")
	events := flag.String("events", "", "cone: comma-separated hardware events (conflicts are split into runs)")
	runs := flag.Int("runs", 1, "number of perturbed runs")
	mean := flag.Bool("mean", false, "write the mean of the runs instead of the last run")
	out := flag.String("o", "out.cube", "output file")
	tracePath := flag.String("trace", "", "also write the binary event trace of the last run")
	machine := flag.String("machine", "cluster", "machine name for the system dimension")
	flag.Parse()

	gen := func(runSeed int64, set counters.EventSet) (*cube.Experiment, *mpisim.Run, error) {
		var cfg mpisim.Config
		var prog mpisim.Program
		var topology *cube.Topology
		switch *app {
		case "pescan":
			pc := apps.PescanConfig{NP: *np, Nodes: *nodes, Barriers: *barriers, Seed: runSeed, NoiseAmp: *noise}
			cfg, prog = apps.PescanSimConfig(pc), apps.Pescan(pc)
		case "sweep3d":
			sc := apps.Sweep3DConfig{Nodes: *nodes, Seed: runSeed, NoiseAmp: *noise}
			sc = sc.WithDefaults()
			if *np != sc.PX*sc.PY {
				return nil, nil, fmt.Errorf("sweep3d uses a %dx%d grid; -np must be %d", sc.PX, sc.PY, sc.PX*sc.PY)
			}
			cfg, prog = apps.Sweep3DSimConfig(sc), apps.Sweep3D(sc)
			topology = apps.Sweep3DTopology(sc)
		case "hybrid":
			hc := apps.HybridConfig{NP: *np, Nodes: *nodes, Threads: *threads, Seed: runSeed, NoiseAmp: *noise}
			cfg, prog = apps.HybridSimConfig(hc), apps.Hybrid(hc)
		case "masterworker":
			mc := apps.MasterWorkerConfig{NP: *np, Nodes: *nodes, Seed: runSeed, NoiseAmp: *noise}
			cfg, prog = apps.MasterWorkerSimConfig(mc), apps.MasterWorker(mc)
		default:
			return nil, nil, fmt.Errorf("unknown -app %q", *app)
		}
		cfg.TraceCounters = set
		run, err := mpisim.Simulate(cfg, prog)
		if err != nil {
			return nil, nil, err
		}
		var e *cube.Experiment
		switch *tool {
		case "expert":
			e, err = expert.Analyze(run.Trace, &expert.Options{Machine: *machine, Nodes: *nodes, Topology: topology})
		case "cone":
			e, err = cone.Profile(run.Trace, &cone.Options{Machine: *machine, Nodes: *nodes, Topology: topology})
		default:
			err = fmt.Errorf("unknown -tool %q", *tool)
		}
		return e, run, err
	}

	var sets []counters.EventSet
	if *events != "" {
		var evs []counters.Event
		for _, s := range strings.Split(*events, ",") {
			evs = append(evs, counters.Event(strings.TrimSpace(s)))
		}
		var err error
		sets, err = counters.Partition(evs)
		if err != nil {
			cli.Fatal("cube-gen", err)
		}
		if *tool != "cone" {
			// EXPERT can also record counters in the trace, but only one
			// compatible set per run.
			if len(sets) > 1 {
				cli.Fatal("cube-gen", fmt.Errorf("events %s cannot be measured in one run; use -tool cone", *events))
			}
		}
	} else {
		sets = []counters.EventSet{nil}
	}

	for si, set := range sets {
		var series []*cube.Experiment
		var lastRun *mpisim.Run
		for i := 0; i < *runs; i++ {
			e, run, err := gen(*seed+int64(i)*101+int64(si)*100003, set)
			if err != nil {
				cli.Fatal("cube-gen", err)
			}
			series = append(series, e)
			lastRun = run
		}
		result := series[len(series)-1]
		if *mean && len(series) > 1 {
			var err error
			result, err = cube.Mean(nil, series...)
			if err != nil {
				cli.Fatal("cube-gen", err)
			}
		}
		path := *out
		if len(sets) > 1 {
			path = strings.TrimSuffix(path, ".cube") + fmt.Sprintf("-set%d.cube", si)
		}
		if err := cube.WriteFile(path, result); err != nil {
			cli.Fatal("cube-gen", err)
		}
		fmt.Printf("wrote %s (%s, events %v)\n", path, result.Title, set)
		if *tracePath != "" && si == len(sets)-1 {
			if err := lastRun.Trace.WriteFile(*tracePath); err != nil {
				cli.Fatal("cube-gen", err)
			}
			fmt.Printf("wrote %s (%d events, %d bytes)\n", *tracePath, len(lastRun.Trace.Events), lastRun.Trace.EncodedSize())
		}
	}
}
