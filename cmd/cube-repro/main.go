// Command cube-repro regenerates the paper's evaluation artifacts and
// prints paper-reported versus measured values:
//
//	cube-repro              # everything
//	cube-repro -fig 1       # Figure 1 only
//	cube-repro -speedup     # §5.1 solver speedup only
//	cube-repro -tracesize   # §5.2 trace-size comparison only
//
// With -outdir the underlying experiments are additionally written as CUBE
// XML files for inspection with cube-view.
//
// The shared profiling flags apply (-cpuprofile, -memprofile, -stats,
// -trace out.json for Chrome trace-event span trees).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cube"
	"cube/internal/cli"
	"cube/internal/core"
	"cube/internal/repro"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate only this figure (1, 2, or 3)")
	speedup := flag.Bool("speedup", false, "regenerate only the solver speedup measurement")
	tracesize := flag.Bool("tracesize", false, "regenerate only the trace-size comparison")
	runs := flag.Int("runs", repro.PaperValues.SeriesRuns, "runs per series for the speedup measurement")
	meanRuns := flag.Int("meanruns", 1, "perturbed runs averaged per measurement before merging (Fig. 3)")
	seed := flag.Int64("seed", 1, "base simulation seed")
	outdir := flag.String("outdir", "", "write generated experiments as CUBE XML files into this directory")
	render := flag.Bool("render", false, "print the display renderings of the figures")
	prof := cli.NewProfile(nil)
	flag.Parse()
	stopProf, err := prof.Start("cube-repro")
	if err != nil {
		cli.Fatal("cube-repro", err)
	}
	defer stopProf()

	all := *fig == 0 && !*speedup && !*tracesize
	write := func(name string, e *core.Experiment) {
		if *outdir == "" {
			return
		}
		path := filepath.Join(*outdir, name)
		if err := cube.WriteFile(path, e); err != nil {
			cli.Fatal("cube-repro", err)
		}
		fmt.Printf("  wrote %s\n", path)
	}

	if all || *fig == 1 {
		r, err := repro.Fig1(*seed)
		if err != nil {
			cli.Fatal("cube-repro", err)
		}
		fmt.Println("== Figure 1: CUBE display of unoptimized PESCAN ==")
		fmt.Printf("  Wait at Barrier share of execution time: paper %.1f%%, measured %.1f%%\n",
			repro.PaperValues.WaitAtBarrierPct, r.WaitAtBarrierPct)
		if *render {
			fmt.Println(r.Rendering)
		}
		write("fig1-pescan-barrier.cube", r.Exp)
	}

	if all || *fig == 2 {
		r, err := repro.Fig2(*seed)
		if err != nil {
			cli.Fatal("cube-repro", err)
		}
		fmt.Println("== Figure 2: difference experiment (original - optimized) ==")
		fmt.Println("  improvements in % of the previous execution time (positive = gain):")
		for _, name := range repro.Fig2Metrics {
			fmt.Printf("    %-26s %+.2f%%\n", name, r.ImprovementPct[name])
		}
		fmt.Printf("  gross balance: %+.1f%% (paper: clearly positive)\n", r.GrossBalancePct)
		if *render {
			fmt.Println(r.Rendering)
		}
		write("fig2-before.cube", r.Before)
		write("fig2-after.cube", r.After)
		write("fig2-diff.cube", r.Diff)
	}

	if all || *speedup {
		r, err := repro.Speedup(*runs, *seed)
		if err != nil {
			cli.Fatal("cube-repro", err)
		}
		fmt.Println("== §5.1: solver speedup after barrier removal ==")
		fmt.Printf("  %d runs per configuration, minimum as representative\n", r.Runs)
		fmt.Printf("  before: min %.4fs   after: min %.4fs\n", r.BeforeMin, r.AfterMin)
		fmt.Printf("  speedup: paper ~%.0f%%, measured %.1f%%\n",
			repro.PaperValues.SolverSpeedupPct, r.SpeedupPct)
	}

	if all || *fig == 3 {
		r, err := repro.Fig3(*seed, *meanRuns)
		if err != nil {
			cli.Fatal("cube-repro", err)
		}
		fmt.Println("== Figure 3: merge of EXPERT and CONE outputs ==")
		fmt.Printf("  counter conflict forces %d CONE measurement runs: %v\n", len(r.ConeSets), r.ConeSets)
		fmt.Printf("  merged metric roots: %v\n", r.MetricRoots)
		fmt.Printf("  L1 data-cache misses at MPI_Recv: %.1f%% (paper: high concentration)\n", r.L1MissAtRecvPct)
		fmt.Printf("  late-sender waiting share of time: %.1f%% (paper: MPI_Recv also a Late-Sender source)\n", r.LateSenderPct)
		if *render {
			fmt.Println(r.Rendering)
		}
		write("fig3-expert.cube", r.Expert)
		for i, p := range r.ConeProfiles {
			write(fmt.Sprintf("fig3-cone-set%d.cube", i), p)
		}
		write("fig3-merged.cube", r.Merged)
	}

	if all || *tracesize {
		r, err := repro.TraceSize(*seed)
		if err != nil {
			cli.Fatal("cube-repro", err)
		}
		fmt.Println("== §5.2: trace-size comparison ==")
		fmt.Printf("  events: %d\n", r.Events)
		fmt.Printf("  trace without counters: %9d bytes\n", r.PlainTraceBytes)
		fmt.Printf("  trace with %d counters: %9d bytes (+%.0f%%)\n",
			len(repro.TraceSizeEvents), r.CounterTraceBytes, r.EnlargementPct)
		fmt.Printf("  CONE call-graph profile: %8d bytes (trace is %.0fx larger)\n",
			r.ProfileBytes, r.TraceOverProfile)
	}

	_ = os.Stdout
}
