// noise-mean demonstrates the mean operator's purpose: unrelated system
// activity perturbs individual runs, so a single experiment can mislead.
// Averaging a series of experiments smooths the random errors, and the
// closure property lets the averaged experiments feed straight into a
// difference — the composite operation the paper highlights
// ("the difference of averaged data"). Run:
//
//	go run ./examples/noise-mean
package main

import (
	"fmt"
	"log"

	"cube"
	"cube/internal/apps"
	"cube/internal/expert"
)

func analyze(barriers bool, seed int64, noise float64) *cube.Experiment {
	cfg := apps.PescanConfig{Barriers: barriers, Seed: seed, NoiseAmp: noise,
		Iterations: 15}
	run, err := apps.RunPescan(cfg)
	if err != nil {
		log.Fatal(err)
	}
	e, err := expert.Analyze(run.Trace, &expert.Options{Machine: "torc", Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	return e
}

func main() {
	const runs = 8
	const noise = 0.25 // heavy perturbation to make the point visible

	series := func(barriers bool, base int64) []*cube.Experiment {
		var out []*cube.Experiment
		for i := int64(0); i < runs; i++ {
			out = append(out, analyze(barriers, base+i*31, noise))
		}
		return out
	}
	timeOf := func(e *cube.Experiment) float64 {
		return e.MetricInclusive(e.FindMetricByName(expert.MetricTime))
	}

	beforeRuns := series(true, 100)
	afterRuns := series(false, 900)

	fmt.Printf("individual run totals (accumulated Time, seconds):\n  before:")
	for _, e := range beforeRuns {
		fmt.Printf(" %.3f", timeOf(e))
	}
	fmt.Printf("\n  after: ")
	for _, e := range afterRuns {
		fmt.Printf(" %.3f", timeOf(e))
	}
	fmt.Println()

	// Single-run difference: noisy.
	single, err := cube.Difference(beforeRuns[0], afterRuns[0], nil)
	if err != nil {
		log.Fatal(err)
	}

	// Composite operation: difference of means.
	avgBefore, err := cube.Mean(nil, beforeRuns...)
	if err != nil {
		log.Fatal(err)
	}
	avgAfter, err := cube.Mean(nil, afterRuns...)
	if err != nil {
		log.Fatal(err)
	}
	smooth, err := cube.Difference(avgBefore, avgAfter, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nderived composite: %s\n", smooth.Title)

	exec := func(e *cube.Experiment) float64 {
		return e.MetricTotal(e.FindMetricByName(expert.MetricExecution))
	}
	fmt.Printf("\npure-computation change (should be ~0, both versions compute the same):\n")
	fmt.Printf("  single-run difference:     %+8.4fs of Execution\n", exec(single))
	fmt.Printf("  difference of %d-run means: %+8.4fs of Execution\n", runs, exec(smooth))

	wab := func(e *cube.Experiment) float64 {
		return e.MetricTotal(e.FindMetricByName(expert.MetricWaitAtBarrier))
	}
	fmt.Printf("\nbarrier-waiting change (the real effect, stable under averaging):\n")
	fmt.Printf("  single-run difference:     %+8.4fs\n", wab(single))
	fmt.Printf("  difference of means:       %+8.4fs\n", wab(smooth))

	// Min is the other classical de-noising operator.
	minBefore, err := cube.Min(nil, beforeRuns...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nelement-wise minimum of the before-series: Execution %.4fs (mean %.4fs)\n",
		exec(minBefore), exec(avgBefore))
}
