// pescan-diff reproduces the §5.1 workflow end to end: simulate the
// PESCAN-like eigensolver in its original (barrier) and optimized
// (barrier-free) versions, analyze both traces with the EXPERT-like
// analyzer, subtract the optimized from the original experiment, and browse
// the difference — disappearing barrier waiting times (raised relief) and
// the migration of waiting into P2P and Wait-at-NxN (sunken relief). Run:
//
//	go run ./examples/pescan-diff
package main

import (
	"fmt"
	"log"

	"cube"
	"cube/internal/apps"
	"cube/internal/display"
	"cube/internal/expert"
)

func analyze(barriers bool, seed int64) *cube.Experiment {
	cfg := apps.PescanConfig{Barriers: barriers, Seed: seed, NoiseAmp: 0.02}
	run, err := apps.RunPescan(cfg)
	if err != nil {
		log.Fatal(err)
	}
	e, err := expert.Analyze(run.Trace, &expert.Options{Machine: "torc", Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s elapsed %.4fs, %d trace events\n", e.Title, run.Elapsed, len(run.Trace.Events))
	return e
}

func main() {
	before := analyze(true, 1)
	after := analyze(false, 42)

	// The traditional practice: single-experiment views side by side.
	// Useful, but it hides where the time migrated — which the difference
	// experiment below shows as one differentiated structure.
	sbs, err := display.SideBySideString(before, after, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nside-by-side (the traditional comparison):\n%s\n", sbs)

	diff, err := cube.Difference(before, after, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Normalize with respect to the old version, as in Figure 2: the
	// numbers show improvements in percent of the previous execution time.
	oldTotal := before.MetricInclusive(before.FindMetricByName(expert.MetricTime))
	fmt.Printf("\nchange in %% of previous execution time (positive = gain):\n")
	for _, name := range []string{
		expert.MetricWaitAtBarrier, expert.MetricSync, expert.MetricBarrierCompl,
		expert.MetricP2P, expert.MetricLateSender, expert.MetricWaitAtNxN,
	} {
		m := diff.FindMetricByName(name)
		fmt.Printf("  %-26s %+6.2f%%\n", name, 100*diff.MetricTotal(m)/oldTotal)
	}
	total := diff.MetricInclusive(diff.FindMetricByName(expert.MetricTime))
	fmt.Printf("  %-26s %+6.2f%%  <- gross balance\n\n", "Time (inclusive)", 100*total/oldTotal)

	// Browse the difference experiment like an original one.
	sel := display.Selection{
		Metric:          diff.FindMetricByName(expert.MetricWaitAtBarrier),
		MetricCollapsed: true,
		CNode:           diff.CallRoots()[0],
		CNodeCollapsed:  true,
	}
	out, err := display.RenderString(diff, sel, &display.Config{
		Mode: display.External, Base: oldTotal, HideZero: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}
