// service-client demonstrates the algebra as a network service (the
// paper's Grid-service integration): it starts the cube-server handler on
// a loopback listener, uploads two experiments, requests their difference,
// and feeds the derived result straight back into the service for a
// rendering — the closure property working across process boundaries. Run:
//
//	go run ./examples/service-client
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"mime/multipart"
	"net"
	"net/http"
	"net/url"
	"strings"

	"cube"
	"cube/internal/apps"
	"cube/internal/expert"
	"cube/internal/server"
)

func analyze(barriers bool, seed int64) *cube.Experiment {
	run, err := apps.RunPescan(apps.PescanConfig{Barriers: barriers, Seed: seed, Iterations: 10})
	if err != nil {
		log.Fatal(err)
	}
	e, err := expert.Analyze(run.Trace, &expert.Options{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	return e
}

// post uploads experiments as multipart operands and returns the body.
func post(url string, exps ...*cube.Experiment) []byte {
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for i, e := range exps {
		fw, err := mw.CreateFormFile("operand", fmt.Sprintf("op%d.cube", i))
		if err != nil {
			log.Fatal(err)
		}
		if err := cube.Write(fw, e); err != nil {
			log.Fatal(err)
		}
	}
	mw.Close()
	resp, err := http.Post(url, mw.FormDataContentType(), &body)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("service error %d: %s", resp.StatusCode, out)
	}
	return out
}

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("cube service listening on %s\n\n", base)

	before := analyze(true, 1)
	after := analyze(false, 2)

	// Remote difference.
	diffXML := post(base+"/op/difference", before, after)
	fmt.Printf("received derived experiment: %d bytes of CUBE XML\n", len(diffXML))
	diff, err := cube.Read(bytes.NewReader(diffXML))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s (derived=%v)\n\n", diff.Title, diff.Derived)

	// Closure across the wire: the derived experiment is a valid operand
	// for the next request — render it remotely with a hotspot list.
	view := post(base+"/view?metric="+url.QueryEscape("Wait at Barrier")+"&mode=percent&top=3", diff)
	for _, line := range strings.Split(string(view), "\n") {
		if strings.TrimSpace(line) != "" {
			fmt.Println(line)
		}
	}
}
