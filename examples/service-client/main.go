// service-client demonstrates the algebra as a network service (the
// paper's Grid-service integration): it runs the hardened cube-server on a
// loopback listener, then uses the typed cube/client package — with its
// automatic retry/backoff policy — to upload two experiments, request
// their difference, and feed the derived result straight back into the
// service for a rendering: the closure property working across process
// boundaries. When done it cancels the server context and waits for the
// graceful drain. Run:
//
//	go run ./examples/service-client
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"time"

	"cube"
	"cube/client"
	"cube/internal/apps"
	"cube/internal/expert"
	"cube/internal/server"
)

func analyze(barriers bool, seed int64) *cube.Experiment {
	run, err := apps.RunPescan(apps.PescanConfig{Barriers: barriers, Seed: seed, Iterations: 10})
	if err != nil {
		log.Fatal(err)
	}
	e, err := expert.Analyze(run.Trace, &expert.Options{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	return e
}

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	cfg := server.DefaultConfig()
	cfg.Logger = log.New(io.Discard, "", 0) // keep the demo output clean
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- server.Serve(ctx, ln, cfg) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("cube service listening on %s\n\n", base)

	// The typed client retries 429/5xx/transport errors with exponential
	// backoff — safe because every operator is a pure function of its
	// uploaded operands.
	c := client.New(base, client.WithMaxRetries(5), client.WithBackoff(50*time.Millisecond, time.Second))
	if err := c.Healthz(ctx); err != nil {
		log.Fatal(err)
	}

	before := analyze(true, 1)
	after := analyze(false, 2)

	// Remote difference through the typed client.
	diff, err := c.Difference(ctx, before, after, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("received derived experiment %q (derived=%v)\n\n", diff.Title, diff.Derived)

	// Closure across the wire: the derived experiment is a valid operand
	// for the next request — render it remotely with a hotspot list.
	view, err := c.View(ctx, diff, &client.ViewOptions{
		Metric: "Wait at Barrier", Mode: "percent", Top: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(view, "\n") {
		if strings.TrimSpace(line) != "" {
			fmt.Println(line)
		}
	}

	// Graceful shutdown: cancel the serve context and wait for the drain.
	cancel()
	if err := <-served; err != nil {
		log.Fatal(err)
	}
}
