// service-client demonstrates the algebra as a network service (the
// paper's Grid-service integration): it runs the hardened cube-server on a
// loopback listener, then uses the typed cube/client package — with its
// automatic retry/backoff policy — to upload two experiments, request
// their difference, and feed the derived result straight back into the
// service for a rendering: the closure property working across process
// boundaries. When done it cancels the server context and waits for the
// graceful drain. Run:
//
//	go run ./examples/service-client
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"strings"
	"time"

	"cube"
	"cube/client"
	"cube/internal/apps"
	"cube/internal/expert"
	"cube/internal/obs"
	"cube/internal/server"
)

func analyze(barriers bool, seed int64) *cube.Experiment {
	run, err := apps.RunPescan(apps.PescanConfig{Barriers: barriers, Seed: seed, Iterations: 10})
	if err != nil {
		log.Fatal(err)
	}
	e, err := expert.Analyze(run.Trace, &expert.Options{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	return e
}

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	cfg := server.DefaultConfig()
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil)) // keep the demo output clean
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- server.Serve(ctx, ln, cfg) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("cube service listening on %s\n\n", base)

	// The typed client retries 429/5xx/transport errors with exponential
	// backoff — safe because every operator is a pure function of its
	// uploaded operands. A private registry collects its telemetry so the
	// demo can report what the retry policy actually did.
	stats := obs.NewRegistry()
	c := client.New(base, client.WithMaxRetries(5),
		client.WithBackoff(50*time.Millisecond, time.Second), client.WithMetrics(stats))
	if err := c.Healthz(ctx); err != nil {
		log.Fatal(err)
	}

	before := analyze(true, 1)
	after := analyze(false, 2)

	// Remote difference through the typed client.
	diff, err := c.Difference(ctx, before, after, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("received derived experiment %q (derived=%v)\n\n", diff.Title, diff.Derived)

	// Closure across the wire: the derived experiment is a valid operand
	// for the next request — render it remotely with a hotspot list.
	view, err := c.View(ctx, diff, &client.ViewOptions{
		Metric: "Wait at Barrier", Mode: "percent", Top: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(view, "\n") {
		if strings.TrimSpace(line) != "" {
			fmt.Println(line)
		}
	}

	// What the retry policy did, straight from the client's telemetry:
	// attempts/retries per endpoint plus whole-call latency (mean).
	fmt.Println("\nclient telemetry:")
	snap := stats.Snapshot()
	retries := map[string]int64{}
	for _, cv := range snap.Counters {
		if cv.Name == "cube_client_retries_total" && len(cv.Labels) > 0 {
			retries[cv.Labels[0].Value] = cv.Value
		}
	}
	for _, cv := range snap.Counters {
		if cv.Name != "cube_client_attempts_total" || len(cv.Labels) == 0 {
			continue
		}
		ep := cv.Labels[0].Value
		fmt.Printf("  %-18s attempts=%d retries=%d", ep, cv.Value, retries[ep])
		for _, hv := range snap.Histograms {
			if hv.Name == "cube_client_request_duration_seconds" &&
				len(hv.Labels) > 0 && hv.Labels[0].Value == ep && hv.Count > 0 {
				fmt.Printf(" mean-latency=%.1fms", hv.Sum/float64(hv.Count)*1e3)
			}
		}
		fmt.Println()
	}

	// Graceful shutdown: cancel the serve context and wait for the drain.
	cancel()
	if err := <-served; err != nil {
		log.Fatal(err)
	}
}
