// hybrid-omp demonstrates the multi-threaded side of the data model: a
// hybrid MPI+OpenMP workload is analyzed into an experiment whose system
// dimension carries the full machine → node → process → thread hierarchy,
// and whose metric tree includes the OpenMP patterns — Idle Threads (time
// worker threads idle during serial phases) and Wait at OpenMP Barrier
// (thread imbalance materialised at the parallel region's join). A
// difference experiment against a balanced variant isolates the imbalance.
// Run:
//
//	go run ./examples/hybrid-omp
package main

import (
	"fmt"
	"log"

	"cube"
	"cube/internal/apps"
	"cube/internal/display"
	"cube/internal/expert"
)

func analyze(imbalance float64, seed int64) *cube.Experiment {
	cfg := apps.HybridConfig{ThreadImbalance: imbalance, Seed: seed, NoiseAmp: 0.02}
	run, err := apps.RunHybrid(cfg)
	if err != nil {
		log.Fatal(err)
	}
	e, err := expert.Analyze(run.Trace, &expert.Options{Machine: "smp-cluster", Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	return e
}

func main() {
	imbalanced := analyze(0.25, 1)
	balanced := analyze(1e-9, 77)

	report := func(e *cube.Experiment, label string) {
		total := e.MetricInclusive(e.FindMetricByName(expert.MetricTime))
		idle := e.MetricInclusive(e.FindMetricByName(expert.MetricIdleThreads))
		wait := e.MetricInclusive(e.FindMetricByName(expert.MetricOMPBarrier))
		fmt.Printf("%-12s total allocation %.4fs | idle threads %5.1f%% | OMP join waiting %5.1f%%\n",
			label, total, 100*idle/total, 100*wait/total)
	}
	report(imbalanced, "imbalanced:")
	report(balanced, "balanced:")

	diff, err := cube.Difference(imbalanced, balanced, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nderived: %s\n\n", diff.Title)

	// Browse the thread-level system dimension: the join-barrier waiting
	// of each thread for the solve region.
	wait := diff.FindMetricByName(expert.MetricOMPBarrier)
	bar := diff.FindCallNode("main/iterate/!$omp parallel solve/!$omp ibarrier")
	if bar == nil {
		log.Fatal("barrier call path missing")
	}
	sel := display.Selection{Metric: wait, MetricCollapsed: true, CNode: bar, CNodeCollapsed: true}
	out, err := display.RenderString(diff, sel, &display.Config{
		Mode:     display.External,
		Base:     balanced.MetricInclusive(balanced.FindMetricByName(expert.MetricTime)),
		HideZero: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}
