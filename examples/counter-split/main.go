// counter-split shows the hardware-counter side of the algebra: the
// simulated platform has four physical counters and POWER4-style conflict
// rules, so a full memory/FP characterisation needs several measurement
// runs. The example plans the runs, profiles each with the CONE-like
// profiler, merges everything into one experiment, and derives cache hits
// from the access/miss metric hierarchy (exclusive values computed
// automatically from the inclusion relationship). Run:
//
//	go run ./examples/counter-split
package main

import (
	"fmt"
	"log"

	"cube"
	"cube/internal/apps"
	"cube/internal/cone"
	"cube/internal/counters"
)

func main() {
	// Requesting related events adjacently keeps access/miss pairs in the
	// same measurement run (the greedy planner fills sets first-fit), so
	// each profile carries the full inclusion hierarchy for its pair.
	want := []counters.Event{
		counters.L1DataAccess, counters.L1DataMiss,
		counters.L2DataAccess, counters.L2DataMiss,
		counters.TotalIns, counters.FPIns,
	}

	// A single run cannot measure all of this.
	if err := counters.EventSet(want).Validate(); err != nil {
		fmt.Printf("single-run measurement impossible: %v\n", err)
	}
	sets, err := counters.Partition(want)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measurement plan (%d runs):\n", len(sets))
	for i, s := range sets {
		fmt.Printf("  run %d: %v\n", i, s)
	}

	scfg := apps.Sweep3DConfig{Seed: 11}.WithDefaults()
	profiles, err := cone.Collect(apps.Sweep3DSimConfig(scfg), apps.Sweep3D(scfg), want, nil)
	if err != nil {
		log.Fatal(err)
	}

	merged, err := cube.MergeAll(nil, profiles...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerged experiment %q\n", merged.Title)

	// The metric tree makes inclusion explicit: L1 accesses include L1
	// misses, so the exclusive value of the access metric is the hits.
	acc := merged.FindMetricByName(string(counters.L1DataAccess))
	miss := merged.FindMetricByName(string(counters.L1DataMiss))
	if miss.Parent() != acc {
		log.Fatalf("expected %s to be a child of %s", miss.Name, acc.Name)
	}
	hits := merged.MetricTotal(acc) // exclusive = accesses - misses
	accesses := merged.MetricInclusive(acc)
	misses := merged.MetricInclusive(miss)
	fmt.Printf("\nL1 data cache (whole program):\n")
	fmt.Printf("  accesses (inclusive) %12.0f\n", accesses)
	fmt.Printf("  misses               %12.0f  (miss rate %.2f%%)\n", misses, 100*misses/accesses)
	fmt.Printf("  hits (exclusive)     %12.0f  <- computed automatically from the tree\n", hits)

	// Per-call-path miss rates, worst first.
	fmt.Printf("\ncall paths by L1 misses:\n")
	type row struct {
		path string
		m, a float64
	}
	var rows []row
	for _, cn := range merged.CallNodes() {
		m := merged.MetricValue(miss, cn)
		a := m + merged.MetricValue(acc, cn)
		if m > 0 {
			rows = append(rows, row{cn.Path(), m, a})
		}
	}
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].m > rows[i].m {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	for i, r := range rows {
		if i == 5 {
			break
		}
		fmt.Printf("  %-34s misses %10.0f  miss rate %5.2f%%\n", r.path, r.m, 100*r.m/r.a)
	}
}
