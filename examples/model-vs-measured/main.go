// model-vs-measured compares an analytical performance model against a
// measured experiment — the paper's third data class ("data coming from
// analytical models or simulations") handled through the same algebra:
// the prediction is built as an ordinary CUBE experiment, so
// Difference(measured, predicted) is the model-validation view. The model
// deliberately contains no waiting terms, which makes the residual a map of
// exactly the imbalance- and synchronisation-induced overheads. Run:
//
//	go run ./examples/model-vs-measured
package main

import (
	"fmt"
	"log"

	"cube"
	"cube/internal/apps"
	"cube/internal/display"
	"cube/internal/expert"
	"cube/internal/perfmodel"
)

func main() {
	cfg := apps.PescanConfig{Barriers: true, Seed: 21, NoiseAmp: 0.01}.WithDefaults()

	// Measurement: simulate and analyze.
	run, err := apps.RunPescan(cfg)
	if err != nil {
		log.Fatal(err)
	}
	measured, err := expert.Analyze(run.Trace, &expert.Options{Machine: "torc", Nodes: cfg.Nodes})
	if err != nil {
		log.Fatal(err)
	}

	// Prediction: evaluate the first-order analytical model.
	predicted, err := perfmodel.PescanModel(cfg, apps.PescanSimConfig(cfg)).Build()
	if err != nil {
		log.Fatal(err)
	}

	mTotal := measured.MetricInclusive(measured.FindMetricByName("Time"))
	pTotal := predicted.MetricInclusive(predicted.FindMetricByName("Time"))
	fmt.Printf("measured total  %.4fs\n", mTotal)
	fmt.Printf("predicted total %.4fs  (model explains %.1f%%)\n", pTotal, 100*pTotal/mTotal)

	// The residual experiment: measured minus predicted.
	residual, err := cube.Difference(measured, predicted, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("residual        %.4fs  = un-modeled overheads\n\n", residual.MetricInclusive(residual.FindMetricByName("Time")))

	// Where does the model deviate? Browse the residual per call path,
	// normalized by the measured total.
	fmt.Println("residual per call path (percent of measured total, [+] under-predicted):")
	sel := display.Selection{
		Metric:          residual.FindMetricByName("Time"),
		MetricCollapsed: true, // inclusive Time: measured - predicted
		CNode:           residual.CallRoots()[0],
		CNodeCollapsed:  true,
	}
	out, err := display.RenderString(residual, sel, &display.Config{
		Mode: display.External, Base: mTotal, HideZero: true,
		Collapsed: map[string]bool{"Time": true, "Visits": true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	// Sanity cross-check: the residual at the barriers should equal the
	// waiting the trace analysis attributes there.
	wab := measured.MetricInclusive(measured.FindMetricByName(expert.MetricWaitAtBarrier))
	bar := residual.FindCallNode("main/solver/iterate/MPI_Barrier")
	var barResidual float64
	residual.FindMetricByName("Time").Walk(func(m *cube.Metric) {
		barResidual += residual.MetricValue(m, bar)
	})
	fmt.Printf("barrier residual %.4fs vs trace-detected barrier waiting %.4fs\n", barResidual, wab)
}
