// scaling-study analyzes the solver at several process counts and uses the
// algebra to summarise across the range of execution parameters — the mean
// operator's second purpose in the paper ("a user might want to combine
// several execution parameters in an overall picture in order to make a
// single statement about the performance for a range of execution
// parameters"). Experiments with different process counts have
// incompatible node partitions, so metadata integration automatically
// collapses the machine/node levels and unions the ranks. StdDev over
// repeated perturbed runs quantifies measurement noise per call path. Run:
//
//	go run ./examples/scaling-study
package main

import (
	"fmt"
	"log"

	"cube"
	"cube/internal/apps"
	"cube/internal/expert"
)

func analyze(np int, seed int64) (*cube.Experiment, float64) {
	cfg := apps.PescanConfig{NP: np, Nodes: (np + 3) / 4, Barriers: false,
		Seed: seed, NoiseAmp: 0.05, Iterations: 15}
	run, err := apps.RunPescan(cfg)
	if err != nil {
		log.Fatal(err)
	}
	e, err := expert.Analyze(run.Trace, &expert.Options{Machine: "torc", Nodes: cfg.Nodes})
	if err != nil {
		log.Fatal(err)
	}
	return e, run.Elapsed
}

func main() {
	counts := []int{4, 8, 16}
	var exps []*cube.Experiment
	var elapsed []float64
	for _, np := range counts {
		e, el := analyze(np, int64(np))
		exps = append(exps, e)
		elapsed = append(elapsed, el)
	}

	fmt.Println("strong-ish scaling of the solver (fixed per-rank work: times grow with comm):")
	fmt.Printf("%6s %12s %14s %12s\n", "np", "elapsed", "MPI fraction", "NxN wait")
	for i, np := range counts {
		e := exps[i]
		total := e.MetricInclusive(e.FindMetricByName(expert.MetricTime))
		mpi := e.MetricInclusive(e.FindMetricByName(expert.MetricMPI))
		nxn := e.MetricInclusive(e.FindMetricByName(expert.MetricWaitAtNxN))
		fmt.Printf("%6d %10.4fs %13.1f%% %11.2f%%\n",
			np, elapsed[i], 100*mpi/total, 100*nxn/total)
	}

	// One overall picture across the parameter range: the mean operator
	// integrates the three experiments; the incompatible node partitions
	// collapse automatically.
	summary, err := cube.Mean(nil, exps...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsummary experiment: %s\n", summary.Title)
	fmt.Printf("  machines: %d (%q)   ranks: %d (union)\n",
		len(summary.Machines()), summary.Machines()[0].Name, len(summary.Processes()))
	total := summary.MetricInclusive(summary.FindMetricByName(expert.MetricTime))
	mpi := summary.MetricInclusive(summary.FindMetricByName(expert.MetricMPI))
	fmt.Printf("  mean accumulated time %.4fs, MPI share %.1f%%\n", total, 100*mpi/total)

	// Noise characterisation at np=16: stddev over repeated runs.
	var series []*cube.Experiment
	for i := int64(0); i < 5; i++ {
		e, _ := analyze(16, 100+i*13)
		series = append(series, e)
	}
	sd, err := cube.StdDev(nil, series...)
	if err != nil {
		log.Fatal(err)
	}
	mean, err := cube.Mean(nil, series...)
	if err != nil {
		log.Fatal(err)
	}
	sdExec := sd.MetricTotal(sd.FindMetricByName(expert.MetricExecution))
	meanExec := mean.MetricTotal(mean.FindMetricByName(expert.MetricExecution))
	fmt.Printf("\nnoise at np=16 over 5 runs: Execution %.4fs ± %.4fs (%.1f%% CoV)\n",
		meanExec, sdExec, 100*sdExec/meanExec)
	sdWait := sd.MetricInclusive(sd.FindMetricByName(expert.MetricWaitAtNxN))
	fmt.Printf("Wait-at-NxN stddev %.4fs — perturbation concentrates in waiting times\n", sdWait)
}
