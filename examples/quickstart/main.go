// Quickstart: build two small experiments against the public API, apply
// the algebra (difference, mean), and round-trip through the CUBE XML
// format. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cube"
	"cube/internal/display"
)

// buildExperiment creates a toy experiment: a Time metric tree, a three-node
// call tree (main → {compute, MPI_Recv}), and four single-threaded
// processes. scale stretches all severities, extraWait adds waiting time —
// so two calls produce "before" and "after" versions of the same program.
func buildExperiment(title string, scale, extraWait float64) *cube.Experiment {
	e := cube.New(title)

	// Metric dimension: Time includes Communication, which includes the
	// waiting-time pattern.
	time := e.NewMetric("Time", cube.Seconds, "total time")
	comm := time.NewChild("Communication", "time in MPI")
	wait := comm.NewChild("Late Sender", "receiver blocked early")

	// Program dimension.
	mainR := e.NewRegion("main", "app.c", 1, 100)
	compR := e.NewRegion("compute", "app.c", 10, 40)
	recvR := e.NewRegion("MPI_Recv", "libmpi", 0, 0)
	root := e.NewCallRoot(e.NewCallSite("", 0, mainR))
	comp := root.NewChild(e.NewCallSite("app.c", 12, compR))
	recv := root.NewChild(e.NewCallSite("app.c", 30, recvR))

	// System dimension: 4 single-threaded processes on one node.
	threads := e.SingleThreadedSystem("toycluster", 1, 4)

	// Severity function.
	for rank, t := range threads {
		e.SetSeverity(time, root, t, 0.1*scale)
		e.SetSeverity(time, comp, t, (2.0+0.1*float64(rank))*scale)
		e.SetSeverity(comm, recv, t, 0.5*scale)
		e.SetSeverity(wait, recv, t, (0.2+extraWait)*scale)
	}
	if err := e.Validate(); err != nil {
		log.Fatal(err)
	}
	return e
}

func main() {
	before := buildExperiment("toy before", 1.0, 0.3)
	after := buildExperiment("toy after", 1.0, 0.0)

	// Difference: a complete derived experiment — browse it like any
	// original one.
	diff, err := cube.Difference(before, after, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived experiment: %s (operation=%s, parents=%v)\n\n",
		diff.Title, diff.Operation, diff.Parents)

	wait := diff.FindMetricByName("Late Sender")
	sel := display.Selection{
		Metric: wait, MetricCollapsed: true,
		CNode: diff.CallRoots()[0], CNodeCollapsed: true,
	}
	out, err := display.RenderString(diff, sel,
		&display.Config{Mode: display.External, Base: before.MetricInclusive(before.FindMetricByName("Time"))})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	// Composite operation thanks to closure: mean of (before, after),
	// then difference against before.
	avg, err := cube.Mean(nil, before, after)
	if err != nil {
		log.Fatal(err)
	}
	comp, err := cube.Difference(before, avg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("composite %s: Late Sender total %+.2fs (half the change)\n",
		comp.Title, comp.MetricTotal(comp.FindMetricByName("Late Sender")))

	// Round-trip through the CUBE XML format.
	dir, err := os.MkdirTemp("", "cube-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "diff.cube")
	if err := cube.WriteFile(path, diff); err != nil {
		log.Fatal(err)
	}
	back, err := cube.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round-trip: %q, %d severity tuples, derived=%v\n",
		back.Title, back.NonZeroCount(), back.Derived)
}
