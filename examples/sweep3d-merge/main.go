// sweep3d-merge reproduces the §5.2 workflow: trace-based parallel analysis
// (EXPERT) of the SWEEP3D-like wavefront code is combined with
// counter-based memory analysis (CONE). Floating-point instructions and L1
// data-cache misses cannot be counted in the same run on the simulated
// platform, so CONE plans two measurement runs; the merge operator then
// integrates one EXPERT output with the two CONE outputs into a single
// derived experiment — revealing that the call paths with above-average
// cache misses (MPI_Recv) are at the same time Late-Sender sources, so most
// of their time was waiting anyway. Run:
//
//	go run ./examples/sweep3d-merge
package main

import (
	"fmt"
	"log"

	"cube"
	"cube/internal/apps"
	"cube/internal/cone"
	"cube/internal/counters"
	"cube/internal/display"
	"cube/internal/expert"
)

func main() {
	scfg := apps.Sweep3DConfig{Seed: 7, NoiseAmp: 0.02}.WithDefaults()

	// Trace-based analysis, with the process-grid topology attached (as
	// instrumented MPI topology routines would provide it).
	run, err := apps.RunSweep3D(scfg)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := expert.Analyze(run.Trace, &expert.Options{
		Machine: "power4", Nodes: scfg.Nodes,
		Topology: apps.Sweep3DTopology(scfg),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Counter-based analysis: conflicting events force separate runs.
	want := []counters.Event{counters.FPIns, counters.L1DataMiss}
	sets, err := counters.Partition(want)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("events %v require %d measurement runs: %v\n", want, len(sets), sets)
	profiles, err := cone.Collect(apps.Sweep3DSimConfig(scfg), apps.Sweep3D(scfg), want,
		&cone.Options{Machine: "power4", Nodes: scfg.Nodes, Topology: apps.Sweep3DTopology(scfg)})
	if err != nil {
		log.Fatal(err)
	}

	// One derived experiment integrating the output of two tools and
	// three runs.
	operands := append([]*cube.Experiment{trace}, profiles...)
	merged, err := cube.MergeAll(nil, operands...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged %q with metric roots:\n", merged.Title)
	for _, r := range merged.MetricRoots() {
		fmt.Printf("  %-22s total %g\n", r.Name, merged.MetricInclusive(r))
	}

	// Where do the cache misses concentrate, and is that time waiting?
	l1m := merged.FindMetricByName(string(counters.L1DataMiss))
	ls := merged.FindMetricByName(expert.MetricLateSender)
	var recvMiss, allMiss float64
	for _, cn := range merged.CallNodes() {
		v := merged.MetricValue(l1m, cn)
		allMiss += v
		if cn.Callee().Name == "MPI_Recv" {
			recvMiss += v
		}
	}
	fmt.Printf("\nL1 data-cache misses at MPI_Recv call paths: %.1f%%\n", 100*recvMiss/allMiss)
	lsTotal := merged.MetricInclusive(ls)
	timeTotal := merged.MetricInclusive(merged.FindMetricByName(expert.MetricTime))
	fmt.Printf("late-sender waiting: %.1f%% of total time — the cache-miss problem is largely waiting time\n\n",
		100*lsTotal/timeTotal)

	sel := display.Selection{Metric: l1m, MetricCollapsed: true,
		CNode: merged.CallRoots()[0], CNodeCollapsed: true}
	out, err := display.RenderString(merged, sel, &display.Config{Mode: display.Percent, HideZero: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	// The topology survives the merge (all operands share the grid), so
	// the late-sender waiting can be viewed over the physical layout:
	// the wavefront's fill penalty grows away from the sweep origins.
	lsSel := display.Selection{Metric: ls, MetricCollapsed: true,
		CNode: merged.CallRoots()[0], CNodeCollapsed: true}
	topoOut, err := display.RenderTopologyString(merged, lsSel, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(topoOut)
}
