package cube_test

import (
	"fmt"

	"cube"
)

// twoRunExperiment builds a small experiment; wait varies between "runs".
func twoRunExperiment(title string, wait float64) *cube.Experiment {
	e := cube.New(title)
	time := e.NewMetric("Time", cube.Seconds, "total time")
	ls := time.NewChild("Late Sender", "waiting on late sends")
	mainR := e.NewRegion("main", "app.c", 1, 80)
	recvR := e.NewRegion("MPI_Recv", "libmpi", 0, 0)
	root := e.NewCallRoot(e.NewCallSite("", 0, mainR))
	recv := root.NewChild(e.NewCallSite("app.c", 42, recvR))
	for _, th := range e.SingleThreadedSystem("cluster", 1, 2) {
		e.SetSeverity(time, root, th, 1.0)
		e.SetSeverity(ls, recv, th, wait)
	}
	return e
}

func ExampleDifference() {
	before := twoRunExperiment("before", 0.40)
	after := twoRunExperiment("after", 0.15)

	diff, err := cube.Difference(before, after, nil)
	if err != nil {
		panic(err)
	}
	ls := diff.FindMetricByName("Late Sender")
	fmt.Printf("%s: Late Sender improved by %.2fs\n", diff.Title, diff.MetricTotal(ls))
	// Output:
	// difference(before, after): Late Sender improved by 0.50s
}

func ExampleMean() {
	r1 := twoRunExperiment("run 1", 0.30)
	r2 := twoRunExperiment("run 2", 0.50)

	avg, err := cube.Mean(nil, r1, r2)
	if err != nil {
		panic(err)
	}
	ls := avg.FindMetricByName("Late Sender")
	fmt.Printf("averaged Late Sender: %.2fs per thread\n", avg.MetricTotal(ls)/2)
	// Output:
	// averaged Late Sender: 0.40s per thread
}

func ExampleMerge() {
	traceExp := twoRunExperiment("trace analysis", 0.4)

	// A counter profile from a separate run: different metrics, same
	// program.
	prof := cube.New("counter profile")
	fp := prof.NewMetric("PAPI_FP_INS", cube.Occurrences, "")
	mainR := prof.NewRegion("main", "app.c", 1, 80)
	root := prof.NewCallRoot(prof.NewCallSite("", 0, mainR))
	for _, th := range prof.SingleThreadedSystem("cluster", 1, 2) {
		prof.SetSeverity(fp, root, th, 1e6)
	}

	merged, err := cube.Merge(traceExp, prof, nil)
	if err != nil {
		panic(err)
	}
	for _, r := range merged.MetricRoots() {
		fmt.Println(r.Name)
	}
	// Output:
	// Time
	// PAPI_FP_INS
}

func ExampleFlatten() {
	e := twoRunExperiment("profiled", 0.25)
	flat, err := cube.Flatten(e)
	if err != nil {
		panic(err)
	}
	for _, root := range flat.CallRoots() {
		fmt.Println(root.Callee().Name)
	}
	// Output:
	// main
	// MPI_Recv
}

func ExampleStructuralDiff() {
	a := twoRunExperiment("a", 0.1)
	b := twoRunExperiment("b", 0.1)
	b.NewMetric("PAPI_L1_DCM", cube.Occurrences, "")

	rep, err := cube.StructuralDiff(a, b, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("shared metrics: %d, only in b: %v\n", len(rep.SharedMetrics), rep.OnlyBMetrics)
	// Output:
	// shared metrics: 2, only in b: [PAPI_L1_DCM]
}
