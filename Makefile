# Development targets. `make check` is the full local gate:
# vet + build + tests + race detector over the concurrency-sensitive
# packages (the server middleware/limiter, the retrying client, traces).

GO ?= go

.PHONY: build test vet race bench bench-json check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector over the packages that exercise concurrency: the
# server's limiter/timeout/shutdown paths, the retrying client, the
# metrics registry, and the trace machinery probed by the fuzz-derived
# robustness tests.
race:
	$(GO) test -race ./internal/server/... ./internal/trace/... ./client/... ./internal/obs/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Machine-readable benchmark record (one file per day), covering the
# root-package operator benchmarks and the instrumentation-overhead
# benchmark in internal/core.
bench-json:
	$(GO) test -run='^$$' -bench=. -benchmem -json . ./internal/core > BENCH_$$(date +%F).json
	@echo wrote BENCH_$$(date +%F).json

check: vet build test race
