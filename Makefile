# Development targets. `make check` is the full local gate:
# vet + build + tests + race detector over the concurrency-sensitive
# packages (the server middleware/limiter, the retrying client, traces).

GO ?= go

# Benchmark selection and output for bench-json. Override BENCH_OUT when
# recording a run that must not clobber a committed baseline of the same
# date, e.g. `make bench-json BENCH_OUT=BENCH_2026-08-06-kernel.json`.
BENCH_PATTERN ?= .
BENCH_OUT ?= BENCH_$(shell date +%F).json

.PHONY: build test vet race bench bench-json bench-io bench-expr bench-integrate bench-self bench-smoke trace-smoke obs-smoke expr-smoke self-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector over the packages that exercise concurrency: the
# server's limiter/timeout/shutdown paths, the retrying client, the
# metrics registry, the trace machinery probed by the fuzz-derived
# robustness tests, the sharded severity kernels in internal/core, and
# the experiment store's fault-injection suite. The wide-event suites
# (concurrent kernel-shard emission, the event ring, the SLO bucket
# ring) live in these same packages and ride along.
race:
	$(GO) test -race ./internal/server/... ./internal/trace/... ./client/... ./internal/obs/... ./internal/core/... ./internal/store/... ./internal/expr/...

bench:
	$(GO) test -bench=$(BENCH_PATTERN) -benchmem -run=^$$ .

# Machine-readable benchmark record (one file per day by default),
# covering the root-package operator benchmarks and the
# instrumentation-overhead benchmark in internal/core.
bench-json:
	$(GO) test -run='^$$' -bench='$(BENCH_PATTERN)' -benchmem -json . ./internal/core > $(BENCH_OUT)
	@echo wrote $(BENCH_OUT)

# Machine-readable I/O benchmark record: the fast vs legacy CUBE XML
# reader and writer (internal/cubexml) and the server's parse-cache
# hit/miss paths (internal/server). Writes BENCH_<date>-io.json so runs
# sit next to the kernel benchmark records without clobbering them.
BENCH_IO_OUT ?= BENCH_$(shell date +%F)-io.json

bench-io:
	$(GO) test -run='^$$' -bench='BenchmarkRead|BenchmarkWrite|BenchmarkParseCache' -benchmem -json \
		./internal/cubexml ./internal/server > $(BENCH_IO_OUT)
	@echo wrote $(BENCH_IO_OUT)

# Machine-readable expression-engine benchmark record: deep-DAG
# evaluation vs sequential single-operator composition, the result-cache
# replay path, and planning overhead (internal/expr).
BENCH_EXPR_OUT ?= BENCH_$(shell date +%F)-expr.json

bench-expr:
	$(GO) test -run='^$$' -bench='BenchmarkExpr' -benchmem -json ./internal/expr > $(BENCH_EXPR_OUT)
	@echo wrote $(BENCH_EXPR_OUT)

# Machine-readable metadata-integration benchmark record: the identity
# fast path and the integration memo against the cold full treemerge
# (internal/core BenchmarkIntegrate*). Writes BENCH_<date>-integrate.json.
BENCH_INTEGRATE_OUT ?= BENCH_$(shell date +%F)-integrate.json

bench-integrate:
	$(GO) test -run='^$$' -bench='BenchmarkIntegrate' -benchmem -json ./internal/core > $(BENCH_INTEGRATE_OUT)
	@echo wrote $(BENCH_INTEGRATE_OUT)

# Quick CI-friendly sanity run: only the large 64x512x64 operator
# benchmarks (kernel and legacy engines), one iteration set each.
bench-smoke:
	$(GO) test -run='^$$' -bench='_64x512x64' -benchmem -benchtime=1x .

# End-to-end tracing smoke: generate two experiments, diff them with
# -trace, and assert the export is valid Chrome trace-event JSON carrying
# the operator span taxonomy (the same checks as TestCLITraceExport, but
# via the installed binaries — suitable for CI on a built tree).
trace-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o $$tmp ./cmd/cube-gen ./cmd/cube-diff && \
	$$tmp/cube-gen -app pescan -barriers -seed 1 -o $$tmp/before.cube && \
	$$tmp/cube-gen -app pescan -seed 9 -o $$tmp/after.cube && \
	$$tmp/cube-diff -trace $$tmp/trace.json -o $$tmp/diff.cube $$tmp/before.cube $$tmp/after.cube && \
	$(GO) run ./internal/cli/tracecheck $$tmp/trace.json && \
	echo trace-smoke: ok

# End-to-end observability smoke: an in-process server with the debug
# gate, a store, and SLO objectives; inline + digest + failing traffic;
# then every /debug/events NDJSON line is schema-checked, the
# one-event-per-request invariant is counted, and /debug/slo burn rates
# are recomputed from their own counters. See internal/cli/obssmoke.
obs-smoke:
	$(GO) run ./internal/cli/obssmoke

# End-to-end expression-engine smoke: an in-process server + store,
# nested DAGs with shared subexpressions via the typed client, asserting
# cube_expr_cse_hits_total > 0, exactly one run of the shared operator,
# and a pure result-cache hit on replay. See internal/cli/exprsmoke.
expr-smoke:
	$(GO) run ./internal/cli/exprsmoke

# End-to-end self-telemetry smoke: an in-process server + store takes
# two snapshots of itself around a burst of operator traffic, the
# snapshots parse back as schema-valid CUBE XML, and the server-side
# Difference of the two runs localizes the burst in the request and
# operator counters. See internal/cli/selfsmoke.
self-smoke:
	$(GO) run ./internal/cli/selfsmoke

# Machine-readable self-telemetry benchmark record: the serving-path
# overhead of a live snapshotter (off vs on sub-benchmarks in
# internal/server). Writes BENCH_<date>-self.json.
BENCH_SELF_OUT ?= BENCH_$(shell date +%F)-self.json

bench-self:
	$(GO) test -run='^$$' -bench='BenchmarkSelf' -benchmem -json ./internal/server > $(BENCH_SELF_OUT)
	@echo wrote $(BENCH_SELF_OUT)

check: vet build test race
