# Development targets. `make check` is the full local gate:
# vet + build + tests + race detector over the concurrency-sensitive
# packages (the server middleware/limiter, the retrying client, traces).

GO ?= go

.PHONY: build test vet race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector over the packages that exercise concurrency: the
# server's limiter/timeout/shutdown paths, the retrying client, and the
# trace machinery probed by the fuzz-derived robustness tests.
race:
	$(GO) test -race ./internal/server/... ./internal/trace/... ./client/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

check: vet build test race
