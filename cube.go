// Package cube is the public API of the CUBE performance algebra: a data
// model for representing performance experiments of message-passing and/or
// multi-threaded applications in a platform-independent fashion, arithmetic
// operations to subtract, merge, and average experiments from multiple
// sources, and file I/O in the CUBE XML format.
//
// An experiment consists of metadata — a metric forest, a program dimension
// (regions, call sites, call trees), and a system forest (machine → node →
// process → thread) — plus a severity function mapping (metric, call path,
// thread) tuples onto accumulated metric values.
//
// All operators are closed: they integrate the operands' metadata and
// return a complete derived experiment that can be processed, stored, and
// displayed exactly like original data, so complex composite operations
// (e.g. the difference of averaged experiments) compose freely:
//
//	avgA, _ := cube.Mean(nil, a1, a2, a3)
//	avgB, _ := cube.Mean(nil, b1, b2, b3)
//	diff, _ := cube.Difference(avgA, avgB, nil)
//	cube.WriteFile("diff.cube", diff)
//
// The subsystems that produce experiments — the discrete-event MPI
// simulator, the EXPERT-like trace analyzer, and the CONE-like call-graph
// profiler — live in the internal packages and are exercised by the
// binaries under cmd/ and the programs under examples/.
package cube

import (
	"context"
	"io"
	"os"

	"cube/internal/core"
	"cube/internal/cubexml"
)

// Core data model types, re-exported.
type (
	// Experiment is a valid instance of the CUBE data model: metadata
	// plus a severity function.
	Experiment = core.Experiment
	// Metric is a node of the metric dimension.
	Metric = core.Metric
	// Unit is a metric's unit of measurement.
	Unit = core.Unit
	// Region is a code section of the program dimension.
	Region = core.Region
	// CallSite is a source location where control moves between regions.
	CallSite = core.CallSite
	// CallNode is a call-tree node; the path to it is a call path.
	CallNode = core.CallNode
	// Machine, SystemNode, Process, and Thread form the system dimension.
	Machine = core.Machine
	// SystemNode is an SMP node of a machine.
	SystemNode = core.SystemNode
	// Process is an application process identified by its global rank.
	Process = core.Process
	// Thread is the mandatory leaf level of the system dimension.
	Thread = core.Thread
	// Options control metadata integration during operator application.
	Options = core.Options
	// CallMatchMode selects the call-tree equality relation.
	CallMatchMode = core.CallMatchMode
	// SystemMode selects machine/node integration behaviour.
	SystemMode = core.SystemMode
	// Dense is a dense 3-D snapshot of a severity function.
	Dense = core.Dense
	// ValidationError reports a violated data-model constraint.
	ValidationError = core.ValidationError
)

// Units of measurement.
const (
	Seconds     = core.Seconds
	Bytes       = core.Bytes
	Occurrences = core.Occurrences
)

// Call-tree matching modes.
const (
	CallMatchCallee     = core.CallMatchCallee
	CallMatchCalleeLine = core.CallMatchCalleeLine
)

// System integration modes.
const (
	SystemAuto      = core.SystemAuto
	SystemCollapse  = core.SystemCollapse
	SystemCopyFirst = core.SystemCopyFirst
)

// New returns an empty experiment with the given title.
func New(title string) *Experiment { return core.New(title) }

// NewMetric returns a fresh root metric.
func NewMetric(name string, unit Unit, description string) *Metric {
	return core.NewMetric(name, unit, description)
}

// Difference computes minuend - subtrahend as a derived experiment.
func Difference(minuend, subtrahend *Experiment, opts *Options) (*Experiment, error) {
	return core.Difference(minuend, subtrahend, opts)
}

// Merge integrates experiments with different or overlapping metric sets.
func Merge(a, b *Experiment, opts *Options) (*Experiment, error) {
	return core.Merge(a, b, opts)
}

// MergeAll merges an arbitrary number of experiments left to right.
func MergeAll(opts *Options, operands ...*Experiment) (*Experiment, error) {
	return core.MergeAll(opts, operands...)
}

// Mean computes the element-wise mean of an arbitrary number of operands.
func Mean(opts *Options, operands ...*Experiment) (*Experiment, error) {
	return core.Mean(opts, operands...)
}

// Sum computes the element-wise sum of the operands.
func Sum(opts *Options, operands ...*Experiment) (*Experiment, error) {
	return core.Sum(opts, operands...)
}

// Min computes the element-wise minimum of the operands.
func Min(opts *Options, operands ...*Experiment) (*Experiment, error) {
	return core.Min(opts, operands...)
}

// Max computes the element-wise maximum of the operands.
func Max(opts *Options, operands ...*Experiment) (*Experiment, error) {
	return core.Max(opts, operands...)
}

// StdDev computes the element-wise sample standard deviation of the
// operands (at least two), quantifying run-to-run perturbation per tuple.
func StdDev(opts *Options, operands ...*Experiment) (*Experiment, error) {
	return core.StdDev(opts, operands...)
}

// Scale multiplies every severity of x by factor.
func Scale(x *Experiment, factor float64, opts *Options) (*Experiment, error) {
	return core.Scale(x, factor, opts)
}

// Flatten converts an experiment into its flat-profile form: one trivial
// single-node call tree per region, severities accumulated per region.
func Flatten(x *Experiment) (*Experiment, error) { return core.Flatten(x) }

// ExtractMetrics restricts an experiment to the metric subtrees rooted at
// the given metric paths (data reduction).
func ExtractMetrics(x *Experiment, paths ...string) (*Experiment, error) {
	return core.ExtractMetrics(x, paths...)
}

// ExtractCallSubtree restricts an experiment to the call subtree rooted at
// the given call path.
func ExtractCallSubtree(x *Experiment, path string) (*Experiment, error) {
	return core.ExtractCallSubtree(x, path)
}

// Prune collapses call subtrees whose inclusive severity for the selected
// metric falls below threshold x the metric's grand total, re-attributing
// their severities to the nearest kept ancestor (lossless data reduction in
// resolution, not in totals).
func Prune(x *Experiment, metricPath string, threshold float64) (*Experiment, error) {
	return core.Prune(x, metricPath, threshold)
}

// Topology is an optional Cartesian process topology attached to an
// experiment.
type Topology = core.Topology

// NewCartesian builds a dense Cartesian topology for ranks 0..n-1 laid out
// row-major over the given dims.
func NewCartesian(name string, dims ...int) (*Topology, error) {
	return core.NewCartesian(name, dims...)
}

// StructuralReport describes how the metadata of two experiments relate.
type StructuralReport = core.StructuralReport

// StructuralDiff compares the metadata sets of two experiments without
// touching their severities (Karavanic & Miller's structural operators).
func StructuralDiff(a, b *Experiment, opts *Options) (*StructuralReport, error) {
	return core.StructuralDiff(a, b, opts)
}

// AlmostEqual reports whether two experiments have identical metadata
// structure and element-wise severity agreement within eps (relative plus
// absolute tolerance) — useful for regression-testing analysis pipelines.
func AlmostEqual(a, b *Experiment, eps float64) bool {
	return core.AlmostEqual(a, b, eps)
}

// Read parses a CUBE XML document.
func Read(r io.Reader) (*Experiment, error) { return cubexml.Read(r) }

// Write serialises an experiment as CUBE XML.
func Write(w io.Writer, e *Experiment) error { return cubexml.Write(w, e) }

// ReadFile reads an experiment from a CUBE XML file.
func ReadFile(path string) (*Experiment, error) { return cubexml.ReadFile(path) }

// WriteFile writes an experiment to a CUBE XML file.
func WriteFile(path string, e *Experiment) error { return cubexml.WriteFile(path, e) }

// Info summarises a CUBE document without its severity store: the
// metadata experiment, the non-zero tuple count, and per-metric severity
// totals.
type Info = cubexml.Info

// ReadFileInfo reads the named file's metadata and severity statistics
// without materialising the severity store — much cheaper than ReadFile
// for summarising large experiments (cube-info uses it).
func ReadFileInfo(path string) (*Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return cubexml.ReadInfo(context.Background(), f, cubexml.ReadOptions{Limits: cubexml.DefaultLimits})
}
